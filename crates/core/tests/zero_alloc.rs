//! Proof that the steady-state phase loop allocates nothing.
//!
//! A counting global allocator wraps the system allocator; after a
//! short warm-up, stepping a [`wardrop_core::Simulation`] many more
//! phases must not change the allocation count. This pins down the
//! fused-pipeline contract: CSR evaluation, board posting, rate
//! construction and integration all run inside pre-allocated buffers.
//!
//! Kept as its own integration-test binary because a global allocator
//! is process-wide; no other tests share this process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use wardrop_core::engine::{Parallelism, Simulation, SimulationConfig};
use wardrop_core::migration::{Linear, MigrationRule, RelativeSlack};
use wardrop_core::policy::{replicator, uniform_linear, SmoothPolicy};
use wardrop_core::sampling::Proportional;
use wardrop_core::BestResponse;
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `window` and returns the allocations counted across it,
/// retrying up to three times if the count is non-zero. The counter is
/// process-global, so the libtest harness thread can inject a stray
/// allocation into any single window; a phase loop that itself
/// allocates fails every attempt, while exogenous noise does not repeat
/// across all three.
fn min_allocations_over_attempts(mut window: impl FnMut()) -> usize {
    let mut best = usize::MAX;
    for _ in 0..3 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        window();
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        best = best.min(after - before);
        if best == 0 {
            break;
        }
    }
    best
}

/// Steps `sim` through `warmup` phases, then asserts that `measured`
/// further phases allocate exactly zero times.
fn assert_steady_state_alloc_free<D: wardrop_core::Dynamics + ?Sized>(
    mut sim: Simulation<'_, D>,
    warmup: usize,
    measured: usize,
    label: &str,
) {
    for _ in 0..warmup {
        assert!(
            sim.step().is_some(),
            "{label}: ran out of phases in warm-up"
        );
    }
    let allocations = min_allocations_over_attempts(|| {
        for _ in 0..measured {
            assert!(sim.step().is_some(), "{label}: ran out of phases");
        }
    });
    assert_eq!(
        allocations, 0,
        "{label}: {allocations} allocations in {measured} steady-state phases"
    );
}

/// Scenario events are the one sanctioned allocation point; the
/// phases *between* events must stay allocation-free because
/// instance mutation never changes buffer shapes. The policy here is
/// separable, so this also pins the sort + prefix-sum path across
/// `apply_event` epochs: latency mutations reorder the sorted
/// permutation, but re-sorting happens inside the retained buffers.
///
/// Not its own `#[test]`: the allocation counter is process-global and
/// the libtest harness allocates from other threads while tests run
/// concurrently, so the single test below drives both parts
/// sequentially.
fn epoch_steady_state_is_allocation_free() {
    use wardrop_net::scenario::EventAction;
    use wardrop_net::EdgeId;

    let inst = builders::multi_commodity_grid(3, 3, 5);
    let policy = uniform_linear(&inst);
    let f0 = FlowVec::uniform(&inst);
    let config = SimulationConfig::new(0.1, 100_000).with_deltas(vec![]);
    let mut sim = Simulation::new(&inst, &policy, &f0, &config);
    for _ in 0..3 {
        sim.step().unwrap();
    }
    for round in 0..4u32 {
        let surge = round % 2 == 0;
        sim.apply_event(&[
            EventAction::SetDemand {
                commodity: 0,
                demand: if surge { 0.7 } else { 0.5 },
            },
            EventAction::ScaleLatency {
                edge: EdgeId::from_index(0),
                factor: if surge { 1.5 } else { 1.0 / 1.5 },
            },
        ])
        .unwrap();
        // One warm-up phase after the shock, then a measured stretch.
        assert!(sim.step().is_some());
        let allocations = min_allocations_over_attempts(|| {
            for _ in 0..100 {
                assert!(sim.step().is_some(), "ran out of phases");
            }
        });
        assert_eq!(
            allocations,
            0,
            "epoch {}: {allocations} allocations in 100 steady-state phases between events",
            sim.epoch()
        );
    }
}

/// A migration rule that hides its kernel: forces the engine onto the
/// lazy-dense fallback so its steady state is pinned allocation-free
/// too (the `n × n` blocks are allocated exactly once, at the first
/// fill inside the warm-up).
#[derive(Debug, Clone, Copy)]
struct OpaqueLinear(Linear);

impl MigrationRule for OpaqueLinear {
    fn probability(&self, l_from: f64, l_to: f64) -> f64 {
        self.0.probability(l_from, l_to)
    }
    fn smoothness(&self) -> Option<f64> {
        self.0.smoothness()
    }
    // No `kernel()` override: default None ⇒ dense path.
    fn name(&self) -> String {
        "opaque-linear".to_string()
    }
}

#[test]
fn steady_state_phase_loop_is_allocation_free() {
    // Multi-edge paths, single commodity: exercises the CSR scatter
    // and gather, the matrix-free rate fill (sort + prefix sums — the
    // sort is `sort_unstable`, which allocates nothing) and
    // uniformization through the two-pointer apply.
    let grid = builders::grid_network(4, 4, 7);
    let policy = uniform_linear(&grid);
    let f0 = FlowVec::uniform(&grid);
    // No δ columns: PhaseRecord's volume vectors stay empty (empty
    // Vec<f64> does not allocate).
    let config = SimulationConfig::new(0.2, 400).with_deltas(vec![]);
    assert_steady_state_alloc_free(
        Simulation::new(&grid, &policy, &f0, &config),
        3,
        100,
        "uniform-linear/grid",
    );

    // Multi-commodity with proportional sampling (replicator).
    let multi = builders::multi_commodity_grid(3, 3, 5);
    let policy = replicator(&multi);
    let f0 = FlowVec::uniform(&multi);
    let config = SimulationConfig::new(0.1, 400).with_deltas(vec![]);
    assert_steady_state_alloc_free(
        Simulation::new(&multi, &policy, &f0, &config),
        3,
        100,
        "replicator/multi-grid",
    );

    // The relative-slack kernel (reciprocal-latency prefix sums).
    let policy = SmoothPolicy::new(Proportional, RelativeSlack);
    let config = SimulationConfig::new(0.1, 400).with_deltas(vec![]);
    assert_steady_state_alloc_free(
        Simulation::new(&multi, &policy, &f0, &config),
        3,
        100,
        "relative-slack/multi-grid",
    );

    // A non-separable custom rule: the lazy-dense fallback allocates
    // its blocks once during warm-up, then runs allocation-free.
    let lmax = multi.latency_upper_bound().max(f64::MIN_POSITIVE);
    let policy = SmoothPolicy::new(Proportional, OpaqueLinear(Linear::new(lmax)));
    let config = SimulationConfig::new(0.1, 400).with_deltas(vec![]);
    assert_steady_state_alloc_free(
        Simulation::new(&multi, &policy, &f0, &config),
        3,
        100,
        "dense-fallback/multi-grid",
    );

    // Closed-form best response with a jittered schedule.
    let osc = builders::two_link_oscillator(2.0);
    let dynamics = BestResponse::new();
    let f0 = FlowVec::uniform(&osc);
    let config = SimulationConfig::new(0.25, 400)
        .with_deltas(vec![])
        .with_jitter(0.3, 11);
    assert_steady_state_alloc_free(
        Simulation::new(&osc, &dynamics, &f0, &config),
        3,
        100,
        "best-response/oscillator",
    );

    // Incremental delta evaluation: the change scan, sparse commits,
    // touched-edge sweeps, latency propagation and the periodic full
    // re-syncs all run inside the pre-allocated delta scratch.
    delta_steady_state_is_allocation_free();

    // Non-stationary epochs: zero allocations between scenario events.
    epoch_steady_state_is_allocation_free();

    // The fault layer: with drop, partial-update, noise and staleness
    // faults all firing, the degraded post path must still run inside
    // the pre-allocated fault scratch.
    faulted_steady_state_is_allocation_free();

    // The implicit-path backend: discovery steps are the sanctioned
    // allocation points; discovery-free phases allocate nothing.
    edge_backend_steady_state_is_allocation_free();

    // The parallel phase loop: worker threads are spawned (and all
    // scratch — per-lane chunk tables, the sorted-position staging
    // buffer — grown) during construction and warm-up; after that the
    // pooled steady state allocates nothing per phase either. The
    // workload must cross the dispatch gates (grid_8x8: 3432 paths,
    // 48048 incidences) or the pool would sit unused.
    parallel_steady_state_is_allocation_free();

    // The event-calendar open-system simulator: board posts, τ-leaped
    // activation batches, queue refreshes and churn clocks all run
    // inside buffers sized at construction, so steady-state events —
    // including degraded posts under an active fault plan — allocate
    // nothing.
    open_system_steady_state_is_allocation_free();
}

/// The DES steady state: every event handler — board posts (with the
/// fault layer degrading them in its pre-allocated scratch), τ-leap
/// batches, M/M/c queue refreshes, Poisson arrivals and departures —
/// must allocate nothing once the calendar's bucket capacities and the
/// policy tables have warmed up. `deltas` is empty so `PhaseRecord`'s
/// volume vectors stay empty, and `phases` is pre-sized to the post
/// count at construction.
fn open_system_steady_state_is_allocation_free() {
    use wardrop_agents::open_system::{OpenSystem, OpenSystemConfig, QueueingModel};
    use wardrop_agents::sim::AgentPolicy;
    use wardrop_core::fault::FaultPlan;

    // Closed population with an active fault plan and queueing: events
    // are posts and queue refreshes, each triggering leap batches.
    let grid = builders::grid_network(4, 4, 7);
    let policy = AgentPolicy::uniform_linear(&grid);
    let f0 = FlowVec::uniform(&grid);
    let plan = FaultPlan::new(9)
        .with_drop_probability(0.3)
        .unwrap()
        .with_partial_updates(0.6)
        .unwrap()
        .with_noise(0.05)
        .unwrap()
        .with_staleness(0, 3)
        .unwrap();
    let config = OpenSystemConfig::new(50_000, 0.2, 2_000, 11)
        .with_deltas(vec![])
        .with_queueing(QueueingModel::new(4, 0.5))
        .with_faults(plan);
    let mut sim = OpenSystem::new(&grid, &policy, &f0, config).unwrap();
    for _ in 0..200 {
        assert!(sim.step().is_some(), "DES fault warm-up ran out of events");
    }
    let allocations = min_allocations_over_attempts(|| {
        for _ in 0..500 {
            assert!(sim.step().is_some(), "DES faulted run out of events");
        }
    });
    assert_eq!(
        allocations, 0,
        "open system (faulted posts): {allocations} allocations in 500 steady-state events"
    );

    // Open population: arrival and departure clocks dominate the event
    // mix. The calendar's bucket capacities are retained across
    // cursor laps, so a long warm-up covers the steady-state backlog of
    // generation-stamped departure events.
    let config = OpenSystemConfig::new(20_000, 0.2, 2_000, 13)
        .with_deltas(vec![])
        .with_churn(400.0, 0.02);
    let mut sim = OpenSystem::new(&grid, &policy, &f0, config).unwrap();
    for _ in 0..3_000 {
        assert!(sim.step().is_some(), "DES churn warm-up ran out of events");
    }
    let allocations = min_allocations_over_attempts(|| {
        for _ in 0..500 {
            assert!(sim.step().is_some(), "DES churn run out of events");
        }
    });
    assert_eq!(
        allocations, 0,
        "open system (churn): {allocations} allocations in 500 steady-state events"
    );
}

/// Delta evaluation steady state: the `ChangeSet` (capacity `P`), the
/// `DeltaEval` shadow state (touched-edge stacks at capacity `E`) and
/// the phase-start snapshot are all sized at `configure_delta` time,
/// so sparse phases *and* drift- or interval-forced re-syncs (the full
/// evaluation reuses the same fused buffers) allocate nothing. The
/// measured window is long enough (100 phases at the default re-sync
/// interval of 64) to be guaranteed to contain at least one re-sync.
fn delta_steady_state_is_allocation_free() {
    let grid = builders::grid_network(4, 4, 7);
    let policy = uniform_linear(&grid);
    let f0 = FlowVec::uniform(&grid);
    let config = SimulationConfig::new(0.2, 400)
        .with_deltas(vec![])
        .with_delta_eval();
    let mut sim = Simulation::new(&grid, &policy, &f0, &config);
    for _ in 0..3 {
        assert!(sim.step().is_some(), "delta warm-up ran out of phases");
    }
    let allocations = min_allocations_over_attempts(|| {
        for _ in 0..100 {
            assert!(sim.step().is_some(), "delta run out of phases");
        }
    });
    assert_eq!(
        allocations, 0,
        "delta evaluation: {allocations} allocations in 100 steady-state phases"
    );
    let stats = sim.delta_stats().expect("delta mode attached");
    assert!(
        stats.sparse_phases > 0 && stats.resyncs > 0,
        "the window must exercise both sparse phases and re-syncs, got {stats:?}"
    );
}

/// The fault layer degrades posts inside pre-allocated buffers
/// (`FaultState` owns its RNG scratch, staleness counters and the
/// path-latency recompute buffer): with every fault kind firing, the
/// steady-state phase loop still allocates nothing.
fn faulted_steady_state_is_allocation_free() {
    use wardrop_core::fault::FaultPlan;

    let grid = builders::grid_network(4, 4, 7);
    let policy = uniform_linear(&grid);
    let f0 = FlowVec::uniform(&grid);
    let plan = FaultPlan::new(9)
        .with_drop_probability(0.3)
        .unwrap()
        .with_partial_updates(0.6)
        .unwrap()
        .with_noise(0.05)
        .unwrap()
        .with_staleness(0, 3)
        .unwrap();
    let config = SimulationConfig::new(0.2, 400)
        .with_deltas(vec![])
        .with_faults(plan);
    let mut sim = Simulation::new(&grid, &policy, &f0, &config);
    for _ in 0..3 {
        assert!(sim.step().is_some(), "fault warm-up ran out of phases");
    }
    let allocations = min_allocations_over_attempts(|| {
        for _ in 0..100 {
            assert!(sim.step().is_some(), "faulted run out of phases");
        }
    });
    assert_eq!(
        allocations, 0,
        "fault layer: {allocations} allocations in 100 steady-state phases"
    );
    let stats = sim.fault_stats().expect("fault layer attached");
    assert!(
        stats.dropped + stats.degraded > 0,
        "the plan must actually fire during the measured window"
    );
}

/// The edge-flow backend's steady state: once the oracle stops
/// discovering columns, a phase allocates nothing — the Dijkstra
/// workspace, the path buffer and the membership index all reuse
/// pre-sized buffers, and the restricted instance's phase loop is the
/// same fused pipeline as the enumerated engine's.
fn edge_backend_steady_state_is_allocation_free() {
    use wardrop_core::edge_engine::{EdgeSimulation, PathSeeding};

    // Full seed: with every implicit path active, the per-phase probe
    // can never discover anything, so *all* phases past warm-up must be
    // allocation-free unconditionally.
    let inst = builders::grid_network(4, 4, 7);
    let edge = wardrop_net::edge_flow::EdgeInstance::from_instance(&inst).unwrap();
    let policy = uniform_linear(&inst);
    let config = SimulationConfig::new(0.2, 400).with_deltas(vec![]);
    let seeding = PathSeeding::Explicit(
        (0..inst.num_commodities())
            .map(|i| inst.paths()[inst.commodity_paths(i)].to_vec())
            .collect(),
    );
    let mut sim = EdgeSimulation::new(&edge, &policy, &config, &seeding).unwrap();
    for _ in 0..3 {
        assert!(sim.step().is_some(), "edge warm-up ran out of phases");
    }
    assert_eq!(sim.discoveries(), 0, "full seed leaves nothing to discover");
    let allocations = min_allocations_over_attempts(|| {
        for _ in 0..100 {
            assert!(sim.step().is_some(), "edge run out of phases");
        }
    });
    assert_eq!(
        allocations, 0,
        "edge backend (full seed): {allocations} allocations in 100 steady-state phases"
    );

    // Oracle seed: discovery may grow the basis (rebuilds allocate, by
    // design); every phase in which the basis did not grow must still
    // be allocation-free.
    let edge = builders::grid_edge_network(6, 6, 7);
    let policy = SmoothPolicy::new(
        wardrop_core::sampling::Uniform,
        Linear::new(edge.latency_upper_bound().max(f64::MIN_POSITIVE)),
    );
    let config = SimulationConfig::new(0.2, 400).with_deltas(vec![]);
    let seeding = PathSeeding::Oracle {
        random_paths: 6,
        seed: 3,
    };
    let mut sim = EdgeSimulation::new(&edge, &policy, &config, &seeding).unwrap();
    for _ in 0..30 {
        assert!(sim.step().is_some(), "oracle warm-up ran out of phases");
    }
    let mut quiet_phases = 0usize;
    let mut noisy_quiet_phases = 0usize;
    for _ in 0..100 {
        let discoveries = sim.discoveries();
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        assert!(sim.step().is_some(), "oracle run out of phases");
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        if sim.discoveries() == discoveries {
            quiet_phases += 1;
            if after != before {
                noisy_quiet_phases += 1;
            }
        }
    }
    // The dynamics converge, so discoveries dry up: the measured window
    // must be dominated by quiet phases or the assertion below is
    // vacuous. A quiet phase allocating would show up in (almost) every
    // quiet phase; a stray count or two is harness noise (the counter
    // is process-global).
    assert!(
        quiet_phases >= 90,
        "only {quiet_phases}/100 phases were discovery-free"
    );
    assert!(
        noisy_quiet_phases <= 2,
        "edge backend (oracle seed): {noisy_quiet_phases}/{quiet_phases} \
         discovery-free phases allocated"
    );
}

/// Counts allocations across `measured` pooled phases, including any
/// performed by the worker lanes themselves (the counting allocator is
/// process-global, and the workers genuinely run during measurement).
fn parallel_steady_state_is_allocation_free() {
    let grid = builders::grid_network(8, 8, 7);
    let policy = uniform_linear(&grid);
    let f0 = FlowVec::uniform(&grid);
    let config = SimulationConfig::new(1.0, 100)
        .with_deltas(vec![])
        .with_parallelism(Parallelism::Threads(2));
    let mut sim = Simulation::new(&grid, &policy, &f0, &config);
    if !sim.uses_worker_pool() {
        // Lane counts are clamped at the CPU count, so on a single-core
        // machine Threads(2) degrades to the serial loop — which the
        // cases above already pin. Nothing pooled left to measure.
        eprintln!("skipping pooled steady-state check: single CPU");
        return;
    }
    for _ in 0..3 {
        assert!(sim.step().is_some(), "parallel warm-up ran out of phases");
    }
    let allocations = min_allocations_over_attempts(|| {
        for _ in 0..15 {
            assert!(sim.step().is_some(), "parallel run out of phases");
        }
    });
    assert_eq!(
        allocations, 0,
        "parallel steady state: {allocations} allocations in 15 phases"
    );
}
