//! Frozen pre-fused-pipeline reference implementation of the phase
//! loop, kept for performance comparison and as an independent oracle.
//!
//! This module replicates, using only public APIs, exactly what
//! `wardrop_core::engine::run` did before the fused evaluation
//! pipeline landed:
//!
//! * every per-phase metric recomputes the full
//!   `edge_flows → edge_latencies → path_latencies` chain and
//!   allocates fresh vectors;
//! * the migration-rate blocks are allocated from scratch each phase
//!   as **dense** `n × n` matrices
//!   ([`ReroutingPolicy::phase_rates_dense`] — the explicit oracle
//!   form, now that the engine's own rates are matrix-free);
//! * the generator is applied column-per-output (strided reads of the
//!   rate matrix) with freshly allocated integration buffers.
//!
//! `bench_report` times [`run_naive`] against the fused
//! `wardrop_core::engine::run` on identical workloads and records both
//! in `BENCH_engine.json`; `tests/baseline_agreement.rs` asserts the
//! two produce matching trajectories. Do not "optimise" this module —
//! its slowness is the point.

use wardrop_core::board::BulletinBoard;
use wardrop_core::engine::SimulationConfig;
use wardrop_core::policy::{PhaseRates, ReroutingPolicy};
use wardrop_core::trajectory::{PhaseRecord, Trajectory};
use wardrop_core::Integrator;
use wardrop_net::equilibrium::{max_regret, unsatisfied_volume, weakly_unsatisfied_volume};
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;
use wardrop_net::potential::{potential, virtual_gain};

/// The pre-fused `PhaseRates::apply`: column-per-output evaluation,
/// reading each block's rate matrix with stride `n`.
pub fn apply_naive(rates: &PhaseRates, f: &[f64], out: &mut [f64]) {
    for b in rates.blocks() {
        let n = b.len();
        let start = b.start();
        let fs = &f[start..start + n];
        let os = &mut out[start..start + n];
        for q in 0..n {
            // Inflow to q.
            let mut acc = 0.0;
            for (p, fp) in fs.iter().enumerate() {
                acc += fp * b.rate(p, q);
            }
            os[q] = acc - fs[q] * b.exit_rate(q);
        }
    }
}

/// The pre-fused uniformization: fresh buffers every call, generator
/// applied via [`apply_naive`].
pub fn uniformization_naive(rates: &PhaseRates, f: &mut [f64], tau: f64, tol: f64) {
    let lambda = rates.max_exit_rate();
    if lambda <= 0.0 {
        return;
    }
    let n = f.len();
    let lt = lambda * tau;
    let mut v = f.to_vec();
    let mut av = vec![0.0; n];
    let mut out = vec![0.0; n];
    let mut weight = (-lt).exp();
    let mut cumulative = weight;
    for (o, vi) in out.iter_mut().zip(&v) {
        *o = weight * vi;
    }
    let max_k = (lt + 40.0 * lt.sqrt() + 64.0).ceil() as usize;
    for k in 1..=max_k {
        apply_naive(rates, &v, &mut av);
        for (vi, a) in v.iter_mut().zip(&av) {
            *vi += a / lambda;
        }
        weight *= lt / k as f64;
        for (o, vi) in out.iter_mut().zip(&v) {
            *o += weight * vi;
        }
        cumulative += weight;
        if 1.0 - cumulative < tol && k as f64 > lt {
            break;
        }
    }
    f.copy_from_slice(&out);
}

/// The pre-fused phase loop for smooth policies: per-metric
/// recomputation, per-phase rate allocation, naive uniformization.
///
/// Limitations (by design — this mirrors what the benches need, not
/// the full engine): only [`Integrator::Uniformization`] is supported
/// and early stopping retains the old off-by-one `flows` bookkeeping.
///
/// # Panics
///
/// Panics if the configuration requests a different integrator, is
/// invalid, or `f0` is infeasible.
pub fn run_naive<P: ReroutingPolicy + ?Sized>(
    instance: &Instance,
    policy: &P,
    f0: &FlowVec,
    config: &SimulationConfig,
) -> Trajectory {
    let tol = match config.integrator {
        Integrator::Uniformization { tol } => tol,
        _ => panic!("baseline::run_naive only supports uniformization"),
    };
    assert!(
        config.update_period.is_finite() && config.update_period > 0.0,
        "update period must be positive"
    );
    assert!(
        f0.is_feasible(instance, 1e-6),
        "initial flow must be feasible"
    );

    let mut flow = f0.clone();
    let mut phases = Vec::with_capacity(config.num_phases.min(1 << 20));
    let mut flows = Vec::new();
    let t_period = config.update_period;
    let mut start_time = 0.0;

    for index in 0..config.num_phases {
        let tau = config.schedule.phase_length(t_period, index);
        let board = BulletinBoard::post(instance, &flow, start_time);
        let potential_start = potential(instance, &flow);
        let avg_latency_start = flow.avg_latency(instance);
        let max_regret_start = max_regret(instance, &flow, 1e-12);
        let unsatisfied: Vec<f64> = config
            .deltas
            .iter()
            .map(|d| unsatisfied_volume(instance, &flow, *d))
            .collect();
        let weakly_unsatisfied: Vec<f64> = config
            .deltas
            .iter()
            .map(|d| weakly_unsatisfied_volume(instance, &flow, *d))
            .collect();
        if config.record_flows {
            flows.push(flow.clone());
        }
        if let Some(threshold) = config.stop_when_regret_below {
            if max_regret_start < threshold {
                break;
            }
        }

        let phase_start_flow = flow.clone();
        let rates = policy.phase_rates_dense(instance, &board);
        uniformization_naive(&rates, flow.values_mut(), tau, tol);
        flow.renormalise(instance);

        let potential_end = potential(instance, &flow);
        let vgain = virtual_gain(instance, &phase_start_flow, &flow);
        phases.push(PhaseRecord {
            index,
            epoch: 0,
            start_time,
            potential_start,
            potential_end,
            virtual_gain: vgain,
            avg_latency_start,
            max_regret_start,
            unsatisfied,
            weakly_unsatisfied,
        });
        start_time += tau;
    }

    Trajectory {
        update_period: t_period,
        deltas: config.deltas.clone(),
        phases,
        flows,
        flow_stride: 1,
        final_flow: flow,
        dynamics: policy.name(),
    }
}
