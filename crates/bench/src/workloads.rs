//! Shared benchmark workload constructors.
//!
//! One place defines the instance/config pairs every consumer measures
//! — the criterion benches, `bench_report` and the experiment binaries
//! all pull from here (instance-level families live one layer lower,
//! in `wardrop_net::builders`), so numbers stay comparable across
//! tools and PRs.

use wardrop_core::engine::{Simulation, SimulationConfig};
use wardrop_core::policy::uniform_linear;
use wardrop_net::builders;
use wardrop_net::edge_flow::EdgeInstance;
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;
use wardrop_net::scenario::EventAction;
use wardrop_net::EdgeId;

/// Best-of-`repeats` wall-clock nanoseconds for `f` — the one timing
/// helper every `bench_report` group and workload timer shares, so a
/// single scheduler hiccup cannot masquerade as a regression anywhere.
pub fn time_best_of<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = std::time::Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// The standard benchmark workload: instance, initial flow and a
/// simulation configuration of `phases` phases at period `t`.
pub fn workload(
    instance: Instance,
    t: f64,
    phases: usize,
) -> (Instance, FlowVec, SimulationConfig) {
    let f0 = FlowVec::uniform(&instance);
    let config = SimulationConfig::new(t, phases);
    (instance, f0, config)
}

/// A named engine workload for `engine_perf` and `bench_report`: the
/// same instance/config pair is driven through both the fused engine
/// and the [`crate::baseline`] reference so speedups are
/// apples-to-apples.
pub struct EngineWorkload {
    /// Stable identifier recorded in `BENCH_engine.json`.
    pub name: &'static str,
    /// The instance under load.
    pub instance: Instance,
    /// Uniform initial flow.
    pub f0: FlowVec,
    /// Simulation configuration (uniformization integrator, no flow
    /// recording, single δ column — the engine's default shape).
    pub config: SimulationConfig,
}

fn engine_workload(
    name: &'static str,
    instance: Instance,
    t: f64,
    phases: usize,
) -> EngineWorkload {
    let (instance, f0, config) = workload(instance, t, phases);
    EngineWorkload {
        name,
        instance,
        f0,
        config,
    }
}

/// Small engine workloads: quick enough for CI smoke runs.
pub fn small_engine_workloads() -> Vec<EngineWorkload> {
    vec![
        engine_workload("grid_5x5", builders::grid_network(5, 5, 7), 0.5, 40),
        engine_workload(
            "multi_commodity_grid_4x4",
            builders::multi_commodity_grid(4, 4, 7),
            0.5,
            40,
        ),
        engine_workload("layered_3x4", builders::layered_network(3, 4, 7), 0.5, 40),
    ]
}

/// Large engine workloads, including the `grid_network(8, 8, seed)`
/// acceptance workload (3432 paths) — production-scale phase loops
/// where rate construction and integration dominate.
pub fn large_engine_workloads() -> Vec<EngineWorkload> {
    vec![
        engine_workload("grid_8x8", builders::grid_network(8, 8, 7), 1.0, 3),
        engine_workload(
            "multi_commodity_grid_6x6",
            builders::multi_commodity_grid(6, 6, 7),
            1.0,
            12,
        ),
        engine_workload("layered_4x6", builders::layered_network(4, 6, 7), 1.0, 6),
    ]
}

/// Frontier workloads: path counts far beyond what the dense Θ(P²)
/// representation could even allocate, runnable only through the
/// matrix-free phase rates — `grid_network(10, 10, _)` has 48 620
/// paths (a dense rate matrix would be ~19 GB), and the 6-commodity
/// `many_commodity_grid(8, 8, 6, _)` mixes block sizes from 36 to
/// 3432 paths. `bench_report` times these fused-only (no dense
/// baseline column) in both smoke and full mode.
pub fn frontier_engine_workloads() -> Vec<EngineWorkload> {
    vec![
        engine_workload("grid_10x10", builders::grid_network(10, 10, 7), 1.0, 40),
        engine_workload(
            "many_commodity_grid_8x8x6",
            builders::many_commodity_grid(8, 8, 6, 7),
            1.0,
            40,
        ),
    ]
}

/// The 12×12 frontier workload: `C(22, 11) = 705 432` paths — ~7× the
/// `DEFAULT_PATH_CAP` and ~15.5 M CSR incidences, a scale only the
/// parallel matrix-free engine reaches in bench time. Built lazily
/// (enumeration alone takes seconds) and only run in `bench_report`'s
/// full mode; few phases keep the wall-clock bounded.
pub fn grid_12x12_frontier_workload() -> EngineWorkload {
    engine_workload(
        "grid_12x12",
        builders::grid_network_with_cap(12, 12, 7, 1_000_000),
        1.0,
        4,
    )
}

/// A named workload for the implicit-path (edge-flow) backend: the
/// instance is path-free, so the only size that matters up front is
/// the network itself.
pub struct EdgeEngineWorkload {
    /// Stable identifier recorded in `BENCH_engine.json`.
    pub name: &'static str,
    /// The path-free instance under load.
    pub edge: EdgeInstance,
    /// Simulation configuration (same defaults as the enumerated
    /// workloads).
    pub config: SimulationConfig,
    /// Whether the enumerated engine could even build this instance
    /// (`false` once the implicit path count dwarfs the path cap — the
    /// frontier the implicit backend exists for).
    pub enumerated_feasible: bool,
}

/// Implicit-path workloads for `bench_report`'s `implicit_path`
/// section, run in **both** smoke and full mode (the backend's cost is
/// network-sized, not path-sized, so even the frontier rows are
/// CI-cheap):
///
/// * `grid_10x10` — 48 620 implicit paths; also an enumerated frontier
///   workload, anchoring the two backends on a common instance;
/// * `grid_14x14` — `C(26, 13) = 10 400 600` implicit paths over 364
///   edges, ~100× the default path cap: the enumerated engine cannot
///   allocate it, the implicit backend treats it as routine.
pub fn implicit_path_workloads() -> Vec<EdgeEngineWorkload> {
    vec![
        EdgeEngineWorkload {
            name: "grid_10x10",
            edge: builders::grid_edge_network(10, 10, 7),
            config: SimulationConfig::new(1.0, 40),
            enumerated_feasible: true,
        },
        EdgeEngineWorkload {
            name: "grid_14x14",
            edge: builders::grid_edge_network(14, 14, 7),
            config: SimulationConfig::new(1.0, 40),
            enumerated_feasible: false,
        },
    ]
}

/// Measures scenario-reconfiguration cost on a workload: the mean
/// nanoseconds of one [`Simulation::apply_event`] (instance mutation +
/// incremental invariant refresh + in-place re-evaluation), averaged
/// over `events` alternating degrade/repair latency events and taken
/// best-of-3 so one scheduler hiccup cannot masquerade as a
/// regression in the committed report.
pub fn time_apply_event(w: &EngineWorkload, events: usize) -> f64 {
    let policy = uniform_linear(&w.instance);
    let mut sim = Simulation::new(&w.instance, &policy, &w.f0, &w.config);
    let edge = EdgeId::from_index(0);
    time_best_of(3, || {
        for k in 0..events {
            let factor = if k % 2 == 0 { 1.25 } else { 0.8 };
            sim.apply_event(&[EventAction::ScaleLatency { edge, factor }])
                .expect("scale events apply cleanly");
        }
    }) / events as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_well_formed() {
        let (inst, f0, config) = workload(builders::braess(), 0.1, 10);
        assert!(f0.is_feasible(&inst, 1e-9));
        assert_eq!(config.num_phases, 10);
    }

    #[test]
    fn apply_event_timer_runs() {
        let w = &small_engine_workloads()[0];
        let ns = time_apply_event(w, 8);
        assert!(ns > 0.0);
    }

    #[test]
    fn implicit_workloads_cross_the_enumeration_frontier() {
        let ws = implicit_path_workloads();
        let frontier = ws
            .iter()
            .find(|w| w.name == "grid_14x14")
            .expect("the acceptance frontier row must exist");
        assert!(!frontier.enumerated_feasible);
        // C(26, 13) = 10 400 600 — two orders of magnitude past the
        // default enumeration cap.
        assert_eq!(frontier.edge.total_implicit_path_count(), 10_400_600.0);
        assert_eq!(frontier.config.num_phases, 40);
        for w in &ws {
            assert!(w.config.num_phases >= 40, "{}", w.name);
        }
    }

    #[test]
    fn frontier_workloads_cross_the_path_threshold() {
        let ws = frontier_engine_workloads();
        assert!(
            ws.iter().any(|w| w.instance.num_paths() >= 40_000),
            "need a P ≥ 40 000 frontier workload"
        );
        for w in &ws {
            assert_eq!(w.config.num_phases, 40);
            assert!(w.f0.is_feasible(&w.instance, 1e-9), "{}", w.name);
        }
    }
}
