//! Machine-readable engine-performance report.
//!
//! Runs the engine workloads of `wardrop-bench` through both the fused
//! phase loop (`wardrop_core::engine::run`) and the frozen dense
//! reference (`wardrop_bench::baseline::run_naive`), and writes
//! `BENCH_engine.json` with ns/phase for each — so the performance
//! trajectory of the hot path is tracked in-repo from PR to PR and CI
//! can surface regressions.
//!
//! Schema v9 additions (open-system agent simulator):
//!
//! * an `agents_scale` section: the event-calendar open-system
//!   simulator (`wardrop_agents::open_system`) on `grid_8x8` at
//!   N ∈ {10⁴, 10⁵, 10⁶, 10⁷} agents with churn and M/M/c queueing —
//!   40 board posts each, recording wall time, events, events/sec,
//!   migrations and the O(paths) state footprint. CI asserts the 10⁷
//!   row exists, `state_bytes` is byte-identical across the sweep
//!   (population independence) and the 10⁷ row's `bytes_per_agent`
//!   stays within the 64·paths/N budget.
//!
//! Schema v8 additions: the `serve` section (daemon headline rows).
//!
//! Schema v7 additions (incremental delta evaluation):
//!
//! * a `delta_eval` section: per-phase evaluation cost (the engine's
//!   own `eval_nanos` meter — change scan + evaluation, excluding rate
//!   construction and integration) of a warm-started late-convergence
//!   run with incremental delta evaluation on vs the full fused
//!   re-evaluation, on `grid_10x10`. The flagship row drives the
//!   relative-slack dynamics to its machine-quiet regime (an untimed
//!   `setup_phases` run seeds both timed runs with the converged flow;
//!   each timed run then discards its own first quarter and measures
//!   the last 75%) and is
//!   asserted ≥ 5× with `bit_identical_at_resync: true` and a
//!   trajectory divergence ≤ 1e-9; a second `uniform_linear` row
//!   records the honest mid-convergence cost (a slowdown — scan and
//!   propagation are pure overhead while most edges still move every
//!   phase). CI asserts the flagship row only.
//! * the binary refuses to emit a section its schema registry does not
//!   recognise (`SectionSchemaError`, checked before serialisation).
//!
//! Schema v6 additions (fault layer):
//!
//! * a `fault_overhead` section: ns/phase of the fused engine on
//!   `grid_8x8` and the implicit-path backend on `grid_14x14`, plain
//!   vs with a zero-fault [`wardrop_core::fault::FaultPlan`] attached.
//!   CI asserts the attached-but-trivial fault layer stays
//!   bit-identical and within 1% ns/phase — the robustness seam is
//!   free when unused.
//!
//! Schema v5 additions (implicit-path backend):
//!
//! * an `implicit_path` section: ns/phase of the edge-flow
//!   column-generation engine
//!   ([`wardrop_core::edge_engine::run_edge`]) on network-sized
//!   workloads, run in both smoke and full mode. Includes the
//!   `grid_14x14` frontier row — 10 400 600 implicit paths over 364
//!   edges, marked `enumerated_feasible: false` because the enumerated
//!   engine cannot even allocate its path arena — with the active
//!   column count and oracle discoveries recorded per row (CI asserts
//!   the row exists and ran all 40 phases).
//!
//! Schema v4 additions (deterministic multi-threaded engine):
//!
//! * a `thread_scaling` section: ns/phase of the fused engine at
//!   1/2/4/8 workers on the large and frontier workloads (smoke mode:
//!   1/2 workers on `grid_8x8` + `many_commodity_grid_8x8x6`), each
//!   parallel run checked **bit-identical** to the serial one
//!   (`bit_identical` per row — CI asserts it);
//! * a `grid_12x12` frontier row (705 432 paths, ~7× the default path
//!   cap) in full mode — a workload only the parallel matrix-free
//!   engine reaches in bench time;
//! * an `ensemble` section: sweep throughput of the ensemble runner
//!   (independent runs fanned across the pool with per-lane reusable
//!   workspaces) at 1/2/4 lanes;
//! * the best-of-N timing helper is the shared
//!   `wardrop_bench::time_best_of` (one definition for every group).
//!
//! Schema v3 (matrix-free phase rates): every comparison workload
//! records `matrix_free`; a `frontier` section times P ≥ 40 000
//! workloads fused-only; a `policy_zoo` section asserts the stock
//! combinations stay matrix-free; `grid_8x8` (and its `speedup`) is
//! reported in both modes.
//!
//! Usage:
//!
//! ```text
//! bench_report [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` restricts the dense-baseline comparisons to the small
//! workloads plus `grid_8x8` and trims the thread sweep (CI-friendly);
//! the default also runs the remaining large workloads, the full
//! 1/2/4/8 sweep and the `grid_12x12` frontier row.

use serde::Serialize;
use wardrop_agents::open_system::{run_open_system, OpenSystemConfig, QueueingModel};
use wardrop_agents::sim::AgentPolicy;
use wardrop_bench::{
    baseline, frontier_engine_workloads, grid_12x12_frontier_workload, implicit_path_workloads,
    large_engine_workloads, small_engine_workloads, time_apply_event, time_best_of,
    EdgeEngineWorkload, EngineWorkload,
};
use wardrop_core::board::BulletinBoard;
use wardrop_core::edge_engine::{EdgeSimulation, PathSeeding};
use wardrop_core::engine::{self, Parallelism};
use wardrop_core::ensemble::{run_many, RunSpec};
use wardrop_core::policy::{stock_policy_zoo, ReroutingPolicy};
use wardrop_core::WorkerPool;
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;

#[derive(Debug, Serialize)]
struct WorkloadReport {
    name: String,
    paths: usize,
    edges: usize,
    incidences: usize,
    phases: usize,
    repeats: usize,
    ns_per_phase_fused: f64,
    ns_per_phase_baseline: f64,
    speedup: f64,
    /// Whether the fused engine used the matrix-free rate
    /// representation for this workload's policy.
    matrix_free: bool,
}

#[derive(Debug, Serialize)]
struct FrontierReport {
    name: String,
    paths: usize,
    edges: usize,
    incidences: usize,
    phases: usize,
    ns_per_phase_fused: f64,
    matrix_free: bool,
}

#[derive(Debug, Serialize)]
struct PolicyZooReport {
    policy: String,
    matrix_free: bool,
}

#[derive(Debug, Serialize)]
struct ReconfigReport {
    name: String,
    paths: usize,
    edges: usize,
    events: usize,
    ns_per_apply_event: f64,
}

#[derive(Debug, Serialize)]
struct ThreadScalingReport {
    name: String,
    paths: usize,
    phases: usize,
    /// Requested worker count (1 = the serial loop, no pool).
    threads: usize,
    /// Lanes the run actually used: `Parallelism` clamps at the
    /// available CPU count, so on a 2-CPU box the 4- and 8-thread rows
    /// resolve to 2 lanes (results are lane-count independent; only
    /// the timing label differs).
    lanes: usize,
    ns_per_phase: f64,
    /// Speedup of this lane count over the 1-lane row of the same
    /// workload in this report.
    speedup_vs_serial: f64,
    /// Whether this run's trajectory (phase records, final flow) is
    /// bit-identical to the serial run — the determinism contract.
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct ImplicitPathReport {
    name: String,
    edges: usize,
    /// Implicit source–sink path count of the workload (exact below
    /// 2^53; the whole point is that it never becomes an allocation).
    implicit_paths: f64,
    /// Columns active at the end of the run (seeds + discoveries).
    active_paths_final: usize,
    /// Columns admitted by the per-phase best-reply probe.
    discoveries: usize,
    phases: usize,
    ns_per_phase: f64,
    /// Whether the enumerated engine could build this instance at all.
    /// `false` marks the frontier rows the implicit backend exists for.
    enumerated_feasible: bool,
}

#[derive(Debug, Serialize)]
struct FaultOverheadReport {
    name: String,
    /// `"fused"` (enumerated engine) or `"implicit-path"`.
    backend: String,
    phases: usize,
    repeats: usize,
    ns_per_phase_plain: f64,
    ns_per_phase_zero_fault: f64,
    /// `(zero_fault − plain) / plain` — may be slightly negative from
    /// timer noise; CI asserts it stays below 1%.
    overhead_fraction: f64,
    /// Whether the zero-fault trajectory is bit-identical to the plain
    /// one (phase records and final flow).
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct EnsembleScalingReport {
    name: String,
    runs: usize,
    lanes: usize,
    ns_per_run: f64,
    speedup_vs_serial: f64,
}

#[derive(Debug, Serialize)]
struct DeltaEvalReport {
    workload: String,
    dynamics: String,
    paths: usize,
    edges: usize,
    /// Untimed setup phases: a separate run of the same dynamics whose
    /// final flow seeds both timed runs, placing them in the
    /// late-convergence regime.
    setup_phases: usize,
    phases: usize,
    /// Warm-start phases excluded from the measured window (first
    /// quarter of the run).
    warm_phases: usize,
    /// Phases in the measured window (the last 75%).
    measured_phases: usize,
    /// ns/phase of the evaluation step (change scan + evaluation) with
    /// full re-evaluation, measured window only.
    ns_per_phase_eval_full: f64,
    /// Same meter with incremental delta evaluation on.
    ns_per_phase_eval_delta: f64,
    eval_speedup: f64,
    /// Re-syncs (drift-budget or interval forced) in the measured
    /// window of the delta run.
    resyncs: u64,
    sparse_phases: u64,
    committed_paths_per_phase: f64,
    touched_edges_per_phase: f64,
    /// max |Φ_delta − Φ_full| over every phase of the whole run.
    max_potential_divergence: f64,
    /// Whether the cached evaluation state was bitwise equal to a
    /// from-scratch evaluation of the run's own flow at every re-sync.
    bit_identical_at_resync: bool,
    /// Whether the ≥ 5× acceptance gate applies to this row.
    asserted: bool,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    schema: String,
    mode: String,
    workloads: Vec<WorkloadReport>,
    /// Matrix-free-only workloads: P far beyond the dense baseline's
    /// reach, timed fused-only.
    frontier: Vec<FrontierReport>,
    /// One entry per stock sampling × migration combination, recording
    /// that the matrix-free path is active.
    policy_zoo: Vec<PolicyZooReport>,
    /// Scenario-reconfiguration cost: one `apply_event` (latency
    /// mutation + incremental invariant refresh + in-place
    /// re-evaluation) per entry.
    reconfig: Vec<ReconfigReport>,
    /// Implicit-path (edge-flow) backend rows, including grids the
    /// enumerated engine cannot allocate.
    implicit_path: Vec<ImplicitPathReport>,
    /// Thread scaling of the fused engine (ns/phase per lane count,
    /// every parallel row verified bit-identical to serial).
    thread_scaling: Vec<ThreadScalingReport>,
    /// Ensemble-runner sweep throughput (ns/run per lane count).
    ensemble: Vec<EnsembleScalingReport>,
    /// Cost of the fault seam when no fault is configured: plain vs
    /// zero-fault-plan runs on both backends (CI asserts < 1%
    /// ns/phase and bit-identity).
    fault_overhead: Vec<FaultOverheadReport>,
    /// Incremental delta evaluation vs full re-evaluation in the
    /// late-convergence regime (CI asserts the flagship `grid_10x10`
    /// row: ≥ 5× and bit-identical at every re-sync).
    delta_eval: Vec<DeltaEvalReport>,
    /// Service-layer throughput and robustness (the `wardrop-serve`
    /// daemon): nominal query latency + checkpoint overhead, typed
    /// shedding under overload, and crash-recovery bounds. The full
    /// staged detail lives in `BENCH_serve.json` (schema
    /// `wardrop-serve/v1`); this section carries the headline rows the
    /// engine report's consumers gate on.
    serve: Vec<ServeReport>,
    /// Open-system agent-simulator scaling sweep: N agents on one
    /// instance at O(paths) state and O(events) work — CI asserts the
    /// 10⁷ row and the population-independence of `state_bytes`.
    agents_scale: Vec<AgentsScaleReport>,
}

/// One population size of the open-system scaling sweep.
#[derive(Debug, Serialize)]
struct AgentsScaleReport {
    workload: String,
    num_agents: u64,
    paths: usize,
    posts: usize,
    /// Calendar events processed (posts, churn, queue refreshes,
    /// horizon) — independent of N by construction.
    events: u64,
    /// Agents moved by τ-leaped activation batches.
    migrations: u64,
    arrivals: u64,
    departures: u64,
    wall_ms: f64,
    events_per_sec: f64,
    /// O(paths) agent state: counters, Fenwick trees, policy tables.
    state_bytes: usize,
    /// Event-calendar footprint (scales with clock rates, not N).
    calendar_bytes: usize,
    /// `state_bytes / num_agents` — the budget is `64·paths/N`.
    bytes_per_agent: f64,
    /// Mover-weighted mean |experienced − posted| latency.
    staleness_mean: f64,
}

/// One headline row of the serve-layer benchmark (see
/// [`wardrop_serve::bench`] for the staged measurements behind it).
#[derive(Debug, Serialize)]
struct ServeReport {
    scenario: String,
    /// Sustained engine phase-event throughput under nominal query
    /// load.
    events_per_sec: f64,
    /// Served route-advice queries per second under nominal load.
    queries_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    /// Queries shed under *nominal* load (must be 0).
    rejected_nominal: u64,
    /// Amortised steady-state checkpoint cost as a fraction of the
    /// phase budget (CI asserts < 1%).
    checkpoint_overhead_fraction: f64,
    /// Typed sheds during the overload storm (must be > 0 — the
    /// ladder fired instead of the daemon falling over).
    overload_rejected_total: u64,
    /// The daemon answered a probe query after the storm.
    overload_survived: bool,
    /// Phases replayed after the injected crash.
    crash_replay_phases: u64,
    /// Replay stayed within two checkpoint intervals.
    crash_recovery_within_two_intervals: bool,
    /// Post-crash trajectory exactly equals the uninterrupted
    /// reference (records and final flow).
    crash_bit_identical: bool,
}

impl BenchReport {
    /// The sections this report instance will serialise, each tagged
    /// with the schema version that introduced it. Fed through
    /// [`validate_sections`] before any bytes are written.
    fn sections(&self) -> Vec<(&'static str, u32)> {
        vec![
            ("workloads", 1),
            ("frontier", 3),
            ("policy_zoo", 3),
            ("reconfig", 2),
            ("implicit_path", 5),
            ("thread_scaling", 4),
            ("ensemble", 4),
            ("fault_overhead", 6),
            ("delta_eval", 7),
            ("serve", 8),
            ("agents_scale", 9),
        ]
    }
}

/// The schema version this binary emits.
const SCHEMA_VERSION: u32 = 9;

/// Every section this binary knows how to emit, with the schema
/// version each was introduced in. The emit guard refuses sections
/// outside this registry — a section rename or a version bump without
/// a matching registry (and downstream-consumer) update fails loudly
/// here instead of silently shipping JSON nobody can parse.
const KNOWN_SECTIONS: &[(&str, u32)] = &[
    ("workloads", 1),
    ("frontier", 3),
    ("policy_zoo", 3),
    ("reconfig", 2),
    ("implicit_path", 5),
    ("thread_scaling", 4),
    ("ensemble", 4),
    ("fault_overhead", 6),
    ("delta_eval", 7),
    ("serve", 8),
    ("agents_scale", 9),
];

/// A section the report serialiser refuses to emit.
#[derive(Debug, PartialEq, Eq)]
enum SectionSchemaError {
    /// The section name is not in [`KNOWN_SECTIONS`] at all.
    UnknownSection(String),
    /// The section claims a schema version this binary does not
    /// recognise (newer than [`SCHEMA_VERSION`], or disagreeing with
    /// the registry's record of when the section was introduced).
    UnrecognisedVersion {
        section: String,
        version: u32,
        expected: u32,
    },
}

impl std::fmt::Display for SectionSchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SectionSchemaError::UnknownSection(name) => {
                write!(f, "refusing to emit unknown report section `{name}`")
            }
            SectionSchemaError::UnrecognisedVersion {
                section,
                version,
                expected,
            } => write!(
                f,
                "refusing to emit section `{section}` at schema version v{version} \
                 (this binary knows it as v{expected}, schema ceiling v{SCHEMA_VERSION})"
            ),
        }
    }
}

impl std::error::Error for SectionSchemaError {}

/// Checks every `(section, version)` pair against the registry.
fn validate_sections(sections: &[(&str, u32)]) -> Result<(), SectionSchemaError> {
    for &(name, version) in sections {
        let Some(&(_, expected)) = KNOWN_SECTIONS.iter().find(|(n, _)| *n == name) else {
            return Err(SectionSchemaError::UnknownSection(name.to_string()));
        };
        if version != expected || version > SCHEMA_VERSION {
            return Err(SectionSchemaError::UnrecognisedVersion {
                section: name.to_string(),
                version,
                expected,
            });
        }
    }
    Ok(())
}

/// Thread sweep on one workload: time the fused engine at each lane
/// count and verify the parallel trajectories are bit-identical to the
/// serial one.
fn measure_thread_scaling(
    w: &EngineWorkload,
    thread_counts: &[usize],
    repeats: usize,
) -> Vec<ThreadScalingReport> {
    let phases = w.config.num_phases;
    let policy = uniform(w);
    let serial = engine::run(&w.instance, &policy, &w.f0, &w.config);
    assert_eq!(serial.len(), phases, "workload must run all phases");
    let mut rows = Vec::new();
    let mut serial_ns = f64::NAN;
    for &threads in thread_counts {
        let config = w
            .config
            .clone()
            .with_parallelism(Parallelism::Threads(threads));
        // Pool construction sits outside the timed region (it is
        // per-simulation, amortised over whole runs in practice), so
        // time through a reused Simulation.
        let mut sim = engine::Simulation::new(&w.instance, &policy, &w.f0, &config);
        let check = sim.drive(); // warm-up + determinism check
        let bit_identical = check.phases == serial.phases && check.final_flow == serial.final_flow;
        let ns = time_best_of(repeats, || {
            sim.reset(&w.f0, &config);
            let traj = sim.drive();
            assert_eq!(traj.len(), phases);
        });
        let ns_per_phase = ns / phases as f64;
        if threads == 1 {
            serial_ns = ns_per_phase;
        }
        let row = ThreadScalingReport {
            name: w.name.to_string(),
            paths: w.instance.num_paths(),
            phases,
            threads,
            lanes: Parallelism::Threads(threads)
                .build_pool()
                .map_or(1, |p| p.lanes()),
            ns_per_phase,
            speedup_vs_serial: serial_ns / ns_per_phase,
            bit_identical,
        };
        println!(
            "{:<28} |P|={:<6} threads {:<2} (lanes {}) {:>12.0} ns/phase   {:>5.2}x vs serial   bit-identical: {}",
            row.name, row.paths, row.threads, row.lanes, row.ns_per_phase, row.speedup_vs_serial, row.bit_identical
        );
        rows.push(row);
    }
    rows
}

/// One implicit-path row: drive the edge-flow backend once to collect
/// the basis statistics (and verify all phases ran), then time repeated
/// runs with the same oracle seeding.
fn measure_implicit_path(w: &EdgeEngineWorkload, repeats: usize) -> ImplicitPathReport {
    let policy = wardrop_core::policy::SmoothPolicy::new(
        wardrop_core::Uniform,
        wardrop_core::Linear::new(w.edge.latency_upper_bound().max(f64::MIN_POSITIVE)),
    );
    let seeding = PathSeeding::default();
    let phases = w.config.num_phases;

    let mut sim = EdgeSimulation::new(&w.edge, &policy, &w.config, &seeding)
        .expect("implicit workloads seed cleanly");
    let mut ran = 0usize;
    while sim.step().is_some() {
        ran += 1;
    }
    assert_eq!(
        ran, phases,
        "{}: implicit run must finish all phases",
        w.name
    );

    let ns = time_best_of(repeats, || {
        let traj = wardrop_core::edge_engine::run_edge(&w.edge, &policy, &w.config, &seeding)
            .expect("implicit workloads run cleanly");
        assert_eq!(traj.len(), phases);
    });
    let report = ImplicitPathReport {
        name: w.name.to_string(),
        edges: w.edge.num_edges(),
        implicit_paths: w.edge.total_implicit_path_count(),
        active_paths_final: sim.active_path_count(),
        discoveries: sim.discoveries(),
        phases,
        ns_per_phase: ns / phases as f64,
        enumerated_feasible: w.enumerated_feasible,
    };
    println!(
        "{:<28} |E|={:<4} implicit |P|={:<12.0} active {:<4} implicit {:>12.0} ns/phase   enumerated feasible: {}",
        report.name,
        report.edges,
        report.implicit_paths,
        report.active_paths_final,
        report.ns_per_phase,
        report.enumerated_feasible
    );
    report
}

/// Ensemble-runner throughput: `runs` independent grid simulations
/// fanned across 1/2/4 lanes through per-lane reusable workspaces.
fn measure_ensemble_scaling() -> Vec<EnsembleScalingReport> {
    let insts: Vec<wardrop_net::Instance> = (0..16)
        .map(|s| builders::grid_network(5, 5, 100 + s))
        .collect();
    let policy = wardrop_core::policy::uniform_linear(&insts[0]);
    let config = engine::SimulationConfig::new(0.5, 40);
    let mut rows = Vec::new();
    let mut serial_ns = f64::NAN;
    for lanes in [1usize, 2, 4] {
        let pool = WorkerPool::new(lanes);
        let ns = time_best_of(3, || {
            let specs: Vec<RunSpec<'_, _>> = insts
                .iter()
                .map(|i| RunSpec::new(i, &policy, FlowVec::uniform(i), config.clone()))
                .collect();
            let trajs = run_many(Some(&pool), &specs);
            assert_eq!(trajs.len(), insts.len());
        }) / insts.len() as f64;
        if lanes == 1 {
            serial_ns = ns;
        }
        let row = EnsembleScalingReport {
            name: "grid_5x5_sweep".to_string(),
            runs: insts.len(),
            lanes,
            ns_per_run: ns,
            speedup_vs_serial: serial_ns / ns,
        };
        println!(
            "{:<28} runs={:<3} lanes {:<2} {:>12.0} ns/run   {:>5.2}x vs serial",
            row.name, row.runs, row.lanes, row.ns_per_run, row.speedup_vs_serial
        );
        rows.push(row);
    }
    rows
}

/// Fault-seam overhead on the fused engine: the same workload with and
/// without a zero-fault plan attached, timed best-of-`repeats`.
fn measure_fault_overhead_fused(w: &EngineWorkload, repeats: usize) -> FaultOverheadReport {
    use wardrop_core::fault::FaultPlan;

    let policy = uniform(w);
    let phases = w.config.num_phases;
    let faulted_config = w.config.clone().with_faults(FaultPlan::new(0));
    let plain_traj = engine::run(&w.instance, &policy, &w.f0, &w.config);
    let faulted_traj = engine::run(&w.instance, &policy, &w.f0, &faulted_config);
    let bit_identical = plain_traj.phases == faulted_traj.phases
        && plain_traj.final_flow == faulted_traj.final_flow;
    let (plain_ns, faulted_ns) = interleaved_best_of(
        repeats,
        || {
            let traj = engine::run(&w.instance, &policy, &w.f0, &w.config);
            assert_eq!(traj.len(), phases);
        },
        || {
            let traj = engine::run(&w.instance, &policy, &w.f0, &faulted_config);
            assert_eq!(traj.len(), phases);
        },
    );
    finish_fault_overhead(
        w.name,
        "fused",
        phases,
        repeats,
        plain_ns,
        faulted_ns,
        bit_identical,
    )
}

/// Fault-seam overhead on the implicit-path backend.
fn measure_fault_overhead_implicit(w: &EdgeEngineWorkload, repeats: usize) -> FaultOverheadReport {
    use wardrop_core::fault::FaultPlan;

    let policy = wardrop_core::policy::SmoothPolicy::new(
        wardrop_core::Uniform,
        wardrop_core::Linear::new(w.edge.latency_upper_bound().max(f64::MIN_POSITIVE)),
    );
    let seeding = PathSeeding::default();
    let phases = w.config.num_phases;
    let faulted_config = w.config.clone().with_faults(FaultPlan::new(0));
    let plain_traj = wardrop_core::edge_engine::run_edge(&w.edge, &policy, &w.config, &seeding)
        .expect("plain implicit run");
    let faulted_traj =
        wardrop_core::edge_engine::run_edge(&w.edge, &policy, &faulted_config, &seeding)
            .expect("zero-fault implicit run");
    let bit_identical = plain_traj.phases == faulted_traj.phases
        && plain_traj.final_flow == faulted_traj.final_flow;
    let (plain_ns, faulted_ns) = interleaved_best_of(
        repeats,
        || {
            let traj = wardrop_core::edge_engine::run_edge(&w.edge, &policy, &w.config, &seeding)
                .expect("plain implicit run");
            assert_eq!(traj.len(), phases);
        },
        || {
            let traj =
                wardrop_core::edge_engine::run_edge(&w.edge, &policy, &faulted_config, &seeding)
                    .expect("zero-fault implicit run");
            assert_eq!(traj.len(), phases);
        },
    );
    finish_fault_overhead(
        w.name,
        "implicit-path",
        phases,
        repeats,
        plain_ns,
        faulted_ns,
        bit_identical,
    )
}

/// Best-of-`repeats` for two variants with the samples *interleaved*
/// (a-b-a-b…), so slow background-load drift hits both floors alike —
/// two sequential best-of blocks would attribute the drift to
/// whichever variant ran second.
fn interleaved_best_of(repeats: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..repeats {
        best_a = best_a.min(time_best_of(1, &mut a));
        best_b = best_b.min(time_best_of(1, &mut b));
    }
    (best_a, best_b)
}

fn finish_fault_overhead(
    name: &str,
    backend: &str,
    phases: usize,
    repeats: usize,
    plain_ns: f64,
    faulted_ns: f64,
    bit_identical: bool,
) -> FaultOverheadReport {
    let report = FaultOverheadReport {
        name: name.to_string(),
        backend: backend.to_string(),
        phases,
        repeats,
        ns_per_phase_plain: plain_ns / phases as f64,
        ns_per_phase_zero_fault: faulted_ns / phases as f64,
        overhead_fraction: (faulted_ns - plain_ns) / plain_ns,
        bit_identical,
    };
    println!(
        "{:<28} {:<13} plain {:>12.0} ns/phase   zero-fault {:>12.0} ns/phase   overhead {:>6.2}%   bit-identical: {}",
        report.name,
        report.backend,
        report.ns_per_phase_plain,
        report.ns_per_phase_zero_fault,
        report.overhead_fraction * 100.0,
        report.bit_identical
    );
    report
}

/// Whether the fused engine's rate structure is matrix-free for this
/// workload's (uniform + linear) policy.
fn workload_matrix_free(w: &EngineWorkload) -> bool {
    let board = BulletinBoard::post(&w.instance, &w.f0, 0.0);
    uniform(w).phase_rates(&w.instance, &board).is_matrix_free()
}

fn measure(w: &EngineWorkload, repeats: usize) -> WorkloadReport {
    let phases = w.config.num_phases;
    // Warm-up: one fused run (touches the instance, populates caches).
    let warm = engine::run(&w.instance, &uniform(w), &w.f0, &w.config);
    assert_eq!(warm.len(), phases, "workload must run all phases");

    let fused_ns = time_best_of(repeats, || {
        let traj = engine::run(&w.instance, &uniform(w), &w.f0, &w.config);
        assert_eq!(traj.len(), phases);
    });
    let baseline_ns = time_best_of(repeats, || {
        let traj = baseline::run_naive(&w.instance, &uniform(w), &w.f0, &w.config);
        assert_eq!(traj.len(), phases);
    });

    let report = WorkloadReport {
        name: w.name.to_string(),
        paths: w.instance.num_paths(),
        edges: w.instance.num_edges(),
        incidences: w.instance.incidence_count(),
        phases,
        repeats,
        ns_per_phase_fused: fused_ns / phases as f64,
        ns_per_phase_baseline: baseline_ns / phases as f64,
        speedup: baseline_ns / fused_ns,
        matrix_free: workload_matrix_free(w),
    };
    println!(
        "{:<28} |P|={:<6} fused {:>12.0} ns/phase   baseline {:>12.0} ns/phase   speedup {:.2}x",
        report.name,
        report.paths,
        report.ns_per_phase_fused,
        report.ns_per_phase_baseline,
        report.speedup
    );
    report
}

fn measure_frontier(w: &EngineWorkload) -> FrontierReport {
    let phases = w.config.num_phases;
    let warm = engine::run(&w.instance, &uniform(w), &w.f0, &w.config);
    assert_eq!(warm.len(), phases, "frontier workload must run all phases");
    let fused_ns = time_best_of(2, || {
        let traj = engine::run(&w.instance, &uniform(w), &w.f0, &w.config);
        assert_eq!(traj.len(), phases);
    });
    let report = FrontierReport {
        name: w.name.to_string(),
        paths: w.instance.num_paths(),
        edges: w.instance.num_edges(),
        incidences: w.instance.incidence_count(),
        phases,
        ns_per_phase_fused: fused_ns / phases as f64,
        matrix_free: workload_matrix_free(w),
    };
    println!(
        "{:<28} |P|={:<6} fused {:>12.0} ns/phase   (matrix-free only: dense would need ~{:.1} GB)",
        report.name,
        report.paths,
        report.ns_per_phase_fused,
        (report.paths as f64).powi(2) * 8.0 / 1e9
    );
    report
}

/// Every stock sampling × migration combination
/// ([`stock_policy_zoo`] — the same shared definition the agreement
/// tests cover), checked for matrix-free rate construction on a small
/// probe instance.
fn policy_zoo() -> Vec<PolicyZooReport> {
    let inst = builders::braess();
    let f = FlowVec::uniform(&inst);
    let board = BulletinBoard::post(&inst, &f, 0.0);
    stock_policy_zoo(inst.latency_upper_bound())
        .iter()
        .map(|p| PolicyZooReport {
            policy: p.name(),
            matrix_free: p.phase_rates(&inst, &board).is_matrix_free(),
        })
        .collect()
}

fn uniform(
    w: &EngineWorkload,
) -> wardrop_core::SmoothPolicy<wardrop_core::Uniform, wardrop_core::Linear> {
    wardrop_core::policy::uniform_linear(&w.instance)
}

/// Times the evaluation step of a warm-started run twice — full
/// re-evaluation vs incremental delta evaluation — through the
/// engine's own `eval_nanos` meter, which wraps exactly the per-phase
/// change scan + evaluation block (rate construction and integration
/// are identical in both runs and excluded).
///
/// The delta run is stepped manually so that every re-sync phase can
/// be checked bitwise against a from-scratch [`wardrop_net::eval::EvalWorkspace`]
/// evaluation of the run's own current flow (the "exact at re-sync"
/// half of the delta contract); the check runs between phases, outside
/// the metered block.
///
/// `setup_phases` is the untimed warm start: a separate run of the
/// same dynamics drives the flow into the late-convergence regime and
/// its final flow seeds both timed runs — this is what "late in a
/// run" means operationally. The timed runs then discard their own
/// first quarter (priming, first re-syncs) and measure the last 75%.
#[allow(clippy::too_many_arguments)]
fn measure_delta_eval(
    workload: &str,
    instance: &wardrop_net::Instance,
    dynamics: &dyn engine::Dynamics,
    dynamics_name: &str,
    t: f64,
    setup_phases: usize,
    phases: usize,
    asserted: bool,
) -> DeltaEvalReport {
    use wardrop_net::eval::EvalWorkspace;

    let f0 = if setup_phases > 0 {
        let setup_cfg = engine::SimulationConfig::new(t, setup_phases);
        let mut setup =
            engine::Simulation::new(instance, dynamics, &FlowVec::uniform(instance), &setup_cfg);
        while setup.step().is_some() {}
        setup.flow().clone()
    } else {
        FlowVec::uniform(instance)
    };
    let warm = phases / 4;
    let measured = phases - warm;

    let full_cfg = engine::SimulationConfig::new(t, phases);
    let mut full = engine::Simulation::new(instance, dynamics, &f0, &full_cfg);
    let mut full_potentials = Vec::with_capacity(phases);
    for _ in 0..warm {
        full_potentials.push(full.step().expect("warm-up phase").potential_end);
    }
    let full_warm_ns = full.eval_nanos();
    while let Some(rec) = full.step() {
        full_potentials.push(rec.potential_end);
    }
    let full_ns = full.eval_nanos() - full_warm_ns;

    let delta_cfg = full_cfg.clone().with_delta_eval();
    let mut delta = engine::Simulation::new(instance, dynamics, &f0, &delta_cfg);
    let mut reference = EvalWorkspace::new(instance);
    let mut bit_identical_at_resync = true;
    let mut max_divergence = 0.0f64;
    let mut delta_warm_ns = 0;
    let mut warm_stats = wardrop_net::DeltaStats::default();
    let mut k = 0usize;
    while let Some(rec) = delta.step() {
        max_divergence = max_divergence.max((rec.potential_end - full_potentials[k]).abs());
        if delta.last_eval_resynced() == Some(true) {
            reference.evaluate(instance, delta.flow());
            bit_identical_at_resync &= delta.eval().potential().to_bits()
                == reference.potential().to_bits()
                && delta.eval().edge_flows() == reference.edge_flows()
                && delta.eval().edge_latencies() == reference.edge_latencies()
                && delta.eval().path_latencies() == reference.path_latencies();
        }
        k += 1;
        if k == warm {
            delta_warm_ns = delta.eval_nanos();
            warm_stats = delta.delta_stats().expect("delta mode attached");
        }
    }
    assert_eq!(k, phases, "{workload}: delta run must complete all phases");
    let delta_ns = delta.eval_nanos() - delta_warm_ns;
    let stats = delta.delta_stats().expect("delta mode attached");
    let resyncs = stats.resyncs - warm_stats.resyncs;
    let sparse_phases = stats.sparse_phases - warm_stats.sparse_phases;
    let committed = stats.committed_paths - warm_stats.committed_paths;
    let touched = stats.touched_edges - warm_stats.touched_edges;

    let ns_per_phase_eval_full = full_ns as f64 / measured as f64;
    let ns_per_phase_eval_delta = delta_ns as f64 / measured as f64;
    let row = DeltaEvalReport {
        workload: workload.to_string(),
        dynamics: dynamics_name.to_string(),
        paths: instance.num_paths(),
        edges: instance.num_edges(),
        setup_phases,
        phases,
        warm_phases: warm,
        measured_phases: measured,
        ns_per_phase_eval_full,
        ns_per_phase_eval_delta,
        eval_speedup: ns_per_phase_eval_full / ns_per_phase_eval_delta,
        resyncs,
        sparse_phases,
        committed_paths_per_phase: committed as f64 / measured as f64,
        touched_edges_per_phase: touched as f64 / measured as f64,
        max_potential_divergence: max_divergence,
        bit_identical_at_resync,
        asserted,
    };
    println!(
        "{:<28} delta eval ({}) {:>10.0} ns/phase vs {:>10.0} full — {:.1}x, \
         {} resyncs, max div {:.2e}",
        workload,
        dynamics_name,
        row.ns_per_phase_eval_delta,
        row.ns_per_phase_eval_full,
        row.eval_speedup,
        row.resyncs,
        row.max_potential_divergence,
    );
    row
}

/// The open-system scaling sweep: grid_8x8 (3432 paths), 40 board
/// posts, balanced churn (the per-agent departure rate is λ/N so the
/// aggregate event rate — and hence the calendar footprint — is the
/// same at every N) and an M/M/c queueing overlay. The replicator
/// policy keeps the τ-leap batches on the kernel fast path.
fn measure_agents_scale(smoke: bool) -> Vec<AgentsScaleReport> {
    let inst = builders::grid_network(8, 8, 7);
    let policy = AgentPolicy::replicator(&inst);
    let f0 = FlowVec::uniform(&inst);
    let populations: &[u64] = if smoke {
        // CI still needs the 10⁷ acceptance row; the sweep's interior
        // points are what smoke mode trims.
        &[10_000, 10_000_000]
    } else {
        &[10_000, 100_000, 1_000_000, 10_000_000]
    };
    let mut rows = Vec::new();
    for &n in populations {
        let config = OpenSystemConfig::new(n, 0.1, 40, 7)
            .with_churn(1000.0, 1000.0 / n as f64)
            .with_queueing(QueueingModel::new(4, 0.5));
        let start = std::time::Instant::now();
        let run = run_open_system(&inst, &policy, &f0, config).expect("open-system sweep run");
        let wall = start.elapsed();
        let stats = run.stats;
        let wall_ms = wall.as_secs_f64() * 1e3;
        let events_per_sec = stats.events as f64 / wall.as_secs_f64();
        println!(
            "{:<28} N={:<9} {:>7} events {:>10.0} ev/s {:>9} movers  state {:>7} B ({:.4} B/agent)",
            "agents_open/grid_8x8",
            n,
            stats.events,
            events_per_sec,
            stats.migrations,
            stats.state_bytes,
            stats.state_bytes as f64 / n as f64,
        );
        rows.push(AgentsScaleReport {
            workload: "grid_8x8".to_string(),
            num_agents: n,
            paths: inst.num_paths(),
            posts: 40,
            events: stats.events,
            migrations: stats.migrations,
            arrivals: stats.arrivals,
            departures: stats.departures,
            wall_ms,
            events_per_sec,
            state_bytes: stats.state_bytes,
            calendar_bytes: stats.calendar_bytes,
            bytes_per_agent: stats.state_bytes as f64 / n as f64,
            staleness_mean: stats.staleness_mean,
        });
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let mut workloads = Vec::new();
    let mut reconfig = Vec::new();
    let mut measure_reconfig = |w: &EngineWorkload, events: usize| {
        let ns = time_apply_event(w, events);
        println!(
            "{:<28} |P|={:<6} apply_event {:>12.0} ns",
            w.name,
            w.instance.num_paths(),
            ns
        );
        reconfig.push(ReconfigReport {
            name: w.name.to_string(),
            paths: w.instance.num_paths(),
            edges: w.instance.num_edges(),
            events,
            ns_per_apply_event: ns,
        });
    };
    for w in small_engine_workloads() {
        workloads.push(measure(&w, 5));
        measure_reconfig(&w, 64);
    }
    for w in large_engine_workloads() {
        // The grid_8x8 acceptance workload (and its speedup field) is
        // reported even in smoke mode; its dense baseline costs a few
        // seconds, dominated entirely by the Θ(P²) reference itself.
        if smoke && w.name != "grid_8x8" {
            continue;
        }
        workloads.push(measure(&w, if smoke { 1 } else { 2 }));
        measure_reconfig(&w, 16);
    }
    let frontier: Vec<FrontierReport> = frontier_engine_workloads()
        .iter()
        .map(measure_frontier)
        .collect();

    // Thread scaling: smoke trims the sweep to 1/2 workers on the two
    // medium workloads; full sweeps 1/2/4/8 and adds the grid_12x12
    // frontier row (705 432 paths — enumeration alone takes a while,
    // so it is built only when needed).
    let mut thread_scaling = Vec::new();
    let scaling_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut scaling_workloads: Vec<EngineWorkload> = Vec::new();
    for w in large_engine_workloads() {
        if w.name == "grid_8x8" {
            scaling_workloads.push(w);
        }
    }
    for w in frontier_engine_workloads() {
        if !smoke || w.name == "many_commodity_grid_8x8x6" {
            scaling_workloads.push(w);
        }
    }
    if !smoke {
        scaling_workloads.push(grid_12x12_frontier_workload());
    }
    for w in &scaling_workloads {
        thread_scaling.extend(measure_thread_scaling(
            w,
            scaling_counts,
            if smoke { 1 } else { 2 },
        ));
    }
    for row in &thread_scaling {
        assert!(
            row.bit_identical,
            "{} at {} threads diverged from the serial trajectory",
            row.name, row.threads
        );
    }

    // The implicit-path backend's cost is network-sized, so even the
    // grid_14x14 frontier row runs in both modes.
    let implicit_path: Vec<ImplicitPathReport> = implicit_path_workloads()
        .iter()
        .map(|w| measure_implicit_path(w, if smoke { 1 } else { 3 }))
        .collect();
    assert!(
        implicit_path
            .iter()
            .any(|r| r.name == "grid_14x14" && !r.enumerated_feasible && r.phases >= 40),
        "the grid_14x14 frontier row is the acceptance criterion"
    );

    let ensemble = measure_ensemble_scaling();

    // Fault-seam overhead: the zero-fault plan must be free (< 1%
    // ns/phase) and bit-identical on both backends.
    let mut fault_overhead = Vec::new();
    // Repeats are higher than elsewhere: the claim is a sub-1%
    // difference between two near-identical timings, so the best-of
    // floor has to be solid (the runs themselves are short).
    for w in large_engine_workloads() {
        if w.name == "grid_8x8" {
            fault_overhead.push(measure_fault_overhead_fused(&w, if smoke { 3 } else { 5 }));
        }
    }
    for w in implicit_path_workloads() {
        if w.name == "grid_14x14" {
            fault_overhead.push(measure_fault_overhead_implicit(
                &w,
                if smoke { 8 } else { 12 },
            ));
        }
    }
    assert_eq!(
        fault_overhead.len(),
        2,
        "fault overhead must cover grid_8x8 (fused) and grid_14x14 (implicit-path)"
    );
    for row in &fault_overhead {
        assert!(
            row.bit_identical,
            "{} ({}): zero-fault plan diverged from the plain run",
            row.name, row.backend
        );
        assert!(
            row.overhead_fraction < 0.01,
            "{} ({}): zero-fault overhead {:.2}% exceeds 1%",
            row.name,
            row.backend,
            row.overhead_fraction * 100.0
        );
    }

    let zoo = policy_zoo();
    for entry in &zoo {
        assert!(
            entry.matrix_free,
            "stock policy {} fell back to dense rates",
            entry.policy
        );
    }

    // Incremental delta evaluation in the late-convergence regime.
    // The flagship row drives the relative-slack dynamics (the fast
    // follow-up-work policy — geometric contraction) at a long phase
    // length until the change scan lists essentially nothing, then
    // measures the last 75% of the run; CI asserts its ≥ 5× gate. The
    // second row is the honest mid-convergence picture under the
    // paper's Theorem-6 policy, where most edges still move every
    // phase and the delta path can do little — reported, not asserted.
    let mut delta_eval = Vec::new();
    let flagship = builders::grid_network(10, 10, 7);
    delta_eval.push(measure_delta_eval(
        "grid_10x10",
        &flagship,
        &wardrop_core::policy::fast_relative_slack(),
        "proportional/relative-slack",
        4.0,
        3000,
        if smoke { 600 } else { 1200 },
        true,
    ));
    delta_eval.push(measure_delta_eval(
        "grid_10x10_linear",
        &flagship,
        &wardrop_core::policy::uniform_linear(&flagship),
        "uniform/linear",
        1.0,
        0,
        if smoke { 240 } else { 480 },
        false,
    ));
    for row in &delta_eval {
        assert!(
            row.bit_identical_at_resync,
            "{} ({}): re-sync state diverged from a from-scratch evaluation",
            row.workload, row.dynamics
        );
        assert!(
            row.max_potential_divergence <= 1e-9,
            "{} ({}): delta trajectory diverged by {:.2e} (> 1e-9)",
            row.workload,
            row.dynamics,
            row.max_potential_divergence
        );
        if row.asserted {
            assert!(
                row.eval_speedup >= 5.0,
                "{} ({}): late-convergence eval speedup {:.2}x below the 5x gate",
                row.workload,
                row.dynamics,
                row.eval_speedup
            );
        }
    }

    // Serve layer: the three staged daemon measurements (nominal /
    // overload / crash-recovery), condensed to one headline row. The
    // stages gate themselves via `acceptance_failures`.
    let serve_scratch = std::env::temp_dir().join("wardrop-bench-serve");
    let serve_outcome = wardrop_serve::bench::run_serve_bench(&serve_scratch, smoke)
        .expect("serve bench stages run cleanly");
    let serve_failures = wardrop_serve::bench::acceptance_failures(&serve_outcome);
    assert!(
        serve_failures.is_empty(),
        "serve acceptance failed:\n  {}",
        serve_failures.join("\n  ")
    );
    println!(
        "{:<28} serve {:>8.0} q/s {:>10.0} ev/s  p99 {:>6}µs  ckpt {:.3}%  \
         shed(overload) {}  crash replay {} phases  bit-identical {}",
        serve_outcome.nominal.scenario,
        serve_outcome.nominal.queries_per_sec,
        serve_outcome.nominal.events_per_sec,
        serve_outcome.nominal.p99_us,
        serve_outcome.nominal.checkpoint_overhead_fraction * 100.0,
        serve_outcome.overload.rejected_total,
        serve_outcome.crash.replay_phases,
        serve_outcome.crash.bit_identical,
    );
    let serve = vec![ServeReport {
        scenario: serve_outcome.nominal.scenario.clone(),
        events_per_sec: serve_outcome.nominal.events_per_sec,
        queries_per_sec: serve_outcome.nominal.queries_per_sec,
        p50_us: serve_outcome.nominal.p50_us,
        p99_us: serve_outcome.nominal.p99_us,
        rejected_nominal: serve_outcome.nominal.rejected,
        checkpoint_overhead_fraction: serve_outcome.nominal.checkpoint_overhead_fraction,
        overload_rejected_total: serve_outcome.overload.rejected_total,
        overload_survived: serve_outcome.overload.survived,
        crash_replay_phases: serve_outcome.crash.replay_phases,
        crash_recovery_within_two_intervals: serve_outcome.crash.recovery_within_two_intervals,
        crash_bit_identical: serve_outcome.crash.bit_identical,
    }];

    // Open-system agent scaling: the 10⁷-agent acceptance row.
    let agents_scale = measure_agents_scale(smoke);
    let ten_million = agents_scale
        .iter()
        .find(|r| r.num_agents == 10_000_000)
        .expect("the 10⁷-agent agents_scale row is the acceptance criterion");
    for row in &agents_scale {
        assert!(
            row.events_per_sec > 0.0,
            "agents_scale N={}: events/sec not recorded",
            row.num_agents
        );
        assert_eq!(
            row.state_bytes, ten_million.state_bytes,
            "agents_scale N={}: state bytes depend on the population",
            row.num_agents
        );
    }
    assert!(
        ten_million.bytes_per_agent
            <= 64.0 * ten_million.paths as f64 / ten_million.num_agents as f64,
        "agents_scale 10⁷ row: {} state bytes exceed the 64·paths budget ({})",
        ten_million.state_bytes,
        64 * ten_million.paths,
    );

    let report = BenchReport {
        schema: format!("wardrop-bench/engine/v{SCHEMA_VERSION}"),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        workloads,
        frontier,
        policy_zoo: zoo,
        reconfig,
        implicit_path,
        thread_scaling,
        ensemble,
        fault_overhead,
        delta_eval,
        serve,
        agents_scale,
    };
    if let Err(err) = validate_sections(&report.sections()) {
        panic!("report schema check failed: {err}");
    }
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sections_pass_the_guard() {
        let listing: Vec<(&str, u32)> = KNOWN_SECTIONS.to_vec();
        assert_eq!(validate_sections(&listing), Ok(()));
    }

    #[test]
    fn unknown_section_is_refused_with_a_typed_error() {
        let err = validate_sections(&[("made_up_section", 7)]).unwrap_err();
        assert_eq!(
            err,
            SectionSchemaError::UnknownSection("made_up_section".to_string())
        );
        assert!(err.to_string().contains("made_up_section"));
    }

    #[test]
    fn unrecognised_version_is_refused_with_a_typed_error() {
        // A future version of a known section must be refused too —
        // this binary cannot know how to serialise it.
        let err = validate_sections(&[("delta_eval", 99)]).unwrap_err();
        assert_eq!(
            err,
            SectionSchemaError::UnrecognisedVersion {
                section: "delta_eval".to_string(),
                version: 99,
                expected: 7,
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("delta_eval") && msg.contains("v99"));
    }
}
