//! Machine-readable engine-performance report.
//!
//! Runs the engine workloads of `wardrop-bench` through both the fused
//! phase loop (`wardrop_core::engine::run`) and the frozen dense
//! reference (`wardrop_bench::baseline::run_naive`), and writes
//! `BENCH_engine.json` with ns/phase for each — so the performance
//! trajectory of the hot path is tracked in-repo from PR to PR and CI
//! can surface regressions.
//!
//! Schema v6 additions (fault layer):
//!
//! * a `fault_overhead` section: ns/phase of the fused engine on
//!   `grid_8x8` and the implicit-path backend on `grid_14x14`, plain
//!   vs with a zero-fault [`wardrop_core::fault::FaultPlan`] attached.
//!   CI asserts the attached-but-trivial fault layer stays
//!   bit-identical and within 1% ns/phase — the robustness seam is
//!   free when unused.
//!
//! Schema v5 additions (implicit-path backend):
//!
//! * an `implicit_path` section: ns/phase of the edge-flow
//!   column-generation engine
//!   ([`wardrop_core::edge_engine::run_edge`]) on network-sized
//!   workloads, run in both smoke and full mode. Includes the
//!   `grid_14x14` frontier row — 10 400 600 implicit paths over 364
//!   edges, marked `enumerated_feasible: false` because the enumerated
//!   engine cannot even allocate its path arena — with the active
//!   column count and oracle discoveries recorded per row (CI asserts
//!   the row exists and ran all 40 phases).
//!
//! Schema v4 additions (deterministic multi-threaded engine):
//!
//! * a `thread_scaling` section: ns/phase of the fused engine at
//!   1/2/4/8 workers on the large and frontier workloads (smoke mode:
//!   1/2 workers on `grid_8x8` + `many_commodity_grid_8x8x6`), each
//!   parallel run checked **bit-identical** to the serial one
//!   (`bit_identical` per row — CI asserts it);
//! * a `grid_12x12` frontier row (705 432 paths, ~7× the default path
//!   cap) in full mode — a workload only the parallel matrix-free
//!   engine reaches in bench time;
//! * an `ensemble` section: sweep throughput of the ensemble runner
//!   (independent runs fanned across the pool with per-lane reusable
//!   workspaces) at 1/2/4 lanes;
//! * the best-of-N timing helper is the shared
//!   `wardrop_bench::time_best_of` (one definition for every group).
//!
//! Schema v3 (matrix-free phase rates): every comparison workload
//! records `matrix_free`; a `frontier` section times P ≥ 40 000
//! workloads fused-only; a `policy_zoo` section asserts the stock
//! combinations stay matrix-free; `grid_8x8` (and its `speedup`) is
//! reported in both modes.
//!
//! Usage:
//!
//! ```text
//! bench_report [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` restricts the dense-baseline comparisons to the small
//! workloads plus `grid_8x8` and trims the thread sweep (CI-friendly);
//! the default also runs the remaining large workloads, the full
//! 1/2/4/8 sweep and the `grid_12x12` frontier row.

use serde::Serialize;
use wardrop_bench::{
    baseline, frontier_engine_workloads, grid_12x12_frontier_workload, implicit_path_workloads,
    large_engine_workloads, small_engine_workloads, time_apply_event, time_best_of,
    EdgeEngineWorkload, EngineWorkload,
};
use wardrop_core::board::BulletinBoard;
use wardrop_core::edge_engine::{EdgeSimulation, PathSeeding};
use wardrop_core::engine::{self, Parallelism};
use wardrop_core::ensemble::{run_many, RunSpec};
use wardrop_core::policy::{stock_policy_zoo, ReroutingPolicy};
use wardrop_core::WorkerPool;
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;

#[derive(Debug, Serialize)]
struct WorkloadReport {
    name: String,
    paths: usize,
    edges: usize,
    incidences: usize,
    phases: usize,
    repeats: usize,
    ns_per_phase_fused: f64,
    ns_per_phase_baseline: f64,
    speedup: f64,
    /// Whether the fused engine used the matrix-free rate
    /// representation for this workload's policy.
    matrix_free: bool,
}

#[derive(Debug, Serialize)]
struct FrontierReport {
    name: String,
    paths: usize,
    edges: usize,
    incidences: usize,
    phases: usize,
    ns_per_phase_fused: f64,
    matrix_free: bool,
}

#[derive(Debug, Serialize)]
struct PolicyZooReport {
    policy: String,
    matrix_free: bool,
}

#[derive(Debug, Serialize)]
struct ReconfigReport {
    name: String,
    paths: usize,
    edges: usize,
    events: usize,
    ns_per_apply_event: f64,
}

#[derive(Debug, Serialize)]
struct ThreadScalingReport {
    name: String,
    paths: usize,
    phases: usize,
    /// Requested worker count (1 = the serial loop, no pool).
    threads: usize,
    /// Lanes the run actually used: `Parallelism` clamps at the
    /// available CPU count, so on a 2-CPU box the 4- and 8-thread rows
    /// resolve to 2 lanes (results are lane-count independent; only
    /// the timing label differs).
    lanes: usize,
    ns_per_phase: f64,
    /// Speedup of this lane count over the 1-lane row of the same
    /// workload in this report.
    speedup_vs_serial: f64,
    /// Whether this run's trajectory (phase records, final flow) is
    /// bit-identical to the serial run — the determinism contract.
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct ImplicitPathReport {
    name: String,
    edges: usize,
    /// Implicit source–sink path count of the workload (exact below
    /// 2^53; the whole point is that it never becomes an allocation).
    implicit_paths: f64,
    /// Columns active at the end of the run (seeds + discoveries).
    active_paths_final: usize,
    /// Columns admitted by the per-phase best-reply probe.
    discoveries: usize,
    phases: usize,
    ns_per_phase: f64,
    /// Whether the enumerated engine could build this instance at all.
    /// `false` marks the frontier rows the implicit backend exists for.
    enumerated_feasible: bool,
}

#[derive(Debug, Serialize)]
struct FaultOverheadReport {
    name: String,
    /// `"fused"` (enumerated engine) or `"implicit-path"`.
    backend: String,
    phases: usize,
    repeats: usize,
    ns_per_phase_plain: f64,
    ns_per_phase_zero_fault: f64,
    /// `(zero_fault − plain) / plain` — may be slightly negative from
    /// timer noise; CI asserts it stays below 1%.
    overhead_fraction: f64,
    /// Whether the zero-fault trajectory is bit-identical to the plain
    /// one (phase records and final flow).
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct EnsembleScalingReport {
    name: String,
    runs: usize,
    lanes: usize,
    ns_per_run: f64,
    speedup_vs_serial: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    schema: String,
    mode: String,
    workloads: Vec<WorkloadReport>,
    /// Matrix-free-only workloads: P far beyond the dense baseline's
    /// reach, timed fused-only.
    frontier: Vec<FrontierReport>,
    /// One entry per stock sampling × migration combination, recording
    /// that the matrix-free path is active.
    policy_zoo: Vec<PolicyZooReport>,
    /// Scenario-reconfiguration cost: one `apply_event` (latency
    /// mutation + incremental invariant refresh + in-place
    /// re-evaluation) per entry.
    reconfig: Vec<ReconfigReport>,
    /// Implicit-path (edge-flow) backend rows, including grids the
    /// enumerated engine cannot allocate.
    implicit_path: Vec<ImplicitPathReport>,
    /// Thread scaling of the fused engine (ns/phase per lane count,
    /// every parallel row verified bit-identical to serial).
    thread_scaling: Vec<ThreadScalingReport>,
    /// Ensemble-runner sweep throughput (ns/run per lane count).
    ensemble: Vec<EnsembleScalingReport>,
    /// Cost of the fault seam when no fault is configured: plain vs
    /// zero-fault-plan runs on both backends (CI asserts < 1%
    /// ns/phase and bit-identity).
    fault_overhead: Vec<FaultOverheadReport>,
}

/// Thread sweep on one workload: time the fused engine at each lane
/// count and verify the parallel trajectories are bit-identical to the
/// serial one.
fn measure_thread_scaling(
    w: &EngineWorkload,
    thread_counts: &[usize],
    repeats: usize,
) -> Vec<ThreadScalingReport> {
    let phases = w.config.num_phases;
    let policy = uniform(w);
    let serial = engine::run(&w.instance, &policy, &w.f0, &w.config);
    assert_eq!(serial.len(), phases, "workload must run all phases");
    let mut rows = Vec::new();
    let mut serial_ns = f64::NAN;
    for &threads in thread_counts {
        let config = w
            .config
            .clone()
            .with_parallelism(Parallelism::Threads(threads));
        // Pool construction sits outside the timed region (it is
        // per-simulation, amortised over whole runs in practice), so
        // time through a reused Simulation.
        let mut sim = engine::Simulation::new(&w.instance, &policy, &w.f0, &config);
        let check = sim.drive(); // warm-up + determinism check
        let bit_identical = check.phases == serial.phases && check.final_flow == serial.final_flow;
        let ns = time_best_of(repeats, || {
            sim.reset(&w.f0, &config);
            let traj = sim.drive();
            assert_eq!(traj.len(), phases);
        });
        let ns_per_phase = ns / phases as f64;
        if threads == 1 {
            serial_ns = ns_per_phase;
        }
        let row = ThreadScalingReport {
            name: w.name.to_string(),
            paths: w.instance.num_paths(),
            phases,
            threads,
            lanes: Parallelism::Threads(threads)
                .build_pool()
                .map_or(1, |p| p.lanes()),
            ns_per_phase,
            speedup_vs_serial: serial_ns / ns_per_phase,
            bit_identical,
        };
        println!(
            "{:<28} |P|={:<6} threads {:<2} (lanes {}) {:>12.0} ns/phase   {:>5.2}x vs serial   bit-identical: {}",
            row.name, row.paths, row.threads, row.lanes, row.ns_per_phase, row.speedup_vs_serial, row.bit_identical
        );
        rows.push(row);
    }
    rows
}

/// One implicit-path row: drive the edge-flow backend once to collect
/// the basis statistics (and verify all phases ran), then time repeated
/// runs with the same oracle seeding.
fn measure_implicit_path(w: &EdgeEngineWorkload, repeats: usize) -> ImplicitPathReport {
    let policy = wardrop_core::policy::SmoothPolicy::new(
        wardrop_core::Uniform,
        wardrop_core::Linear::new(w.edge.latency_upper_bound().max(f64::MIN_POSITIVE)),
    );
    let seeding = PathSeeding::default();
    let phases = w.config.num_phases;

    let mut sim = EdgeSimulation::new(&w.edge, &policy, &w.config, &seeding)
        .expect("implicit workloads seed cleanly");
    let mut ran = 0usize;
    while sim.step().is_some() {
        ran += 1;
    }
    assert_eq!(
        ran, phases,
        "{}: implicit run must finish all phases",
        w.name
    );

    let ns = time_best_of(repeats, || {
        let traj = wardrop_core::edge_engine::run_edge(&w.edge, &policy, &w.config, &seeding)
            .expect("implicit workloads run cleanly");
        assert_eq!(traj.len(), phases);
    });
    let report = ImplicitPathReport {
        name: w.name.to_string(),
        edges: w.edge.num_edges(),
        implicit_paths: w.edge.total_implicit_path_count(),
        active_paths_final: sim.active_path_count(),
        discoveries: sim.discoveries(),
        phases,
        ns_per_phase: ns / phases as f64,
        enumerated_feasible: w.enumerated_feasible,
    };
    println!(
        "{:<28} |E|={:<4} implicit |P|={:<12.0} active {:<4} implicit {:>12.0} ns/phase   enumerated feasible: {}",
        report.name,
        report.edges,
        report.implicit_paths,
        report.active_paths_final,
        report.ns_per_phase,
        report.enumerated_feasible
    );
    report
}

/// Ensemble-runner throughput: `runs` independent grid simulations
/// fanned across 1/2/4 lanes through per-lane reusable workspaces.
fn measure_ensemble_scaling() -> Vec<EnsembleScalingReport> {
    let insts: Vec<wardrop_net::Instance> = (0..16)
        .map(|s| builders::grid_network(5, 5, 100 + s))
        .collect();
    let policy = wardrop_core::policy::uniform_linear(&insts[0]);
    let config = engine::SimulationConfig::new(0.5, 40);
    let mut rows = Vec::new();
    let mut serial_ns = f64::NAN;
    for lanes in [1usize, 2, 4] {
        let pool = WorkerPool::new(lanes);
        let ns = time_best_of(3, || {
            let specs: Vec<RunSpec<'_, _>> = insts
                .iter()
                .map(|i| RunSpec::new(i, &policy, FlowVec::uniform(i), config.clone()))
                .collect();
            let trajs = run_many(Some(&pool), &specs);
            assert_eq!(trajs.len(), insts.len());
        }) / insts.len() as f64;
        if lanes == 1 {
            serial_ns = ns;
        }
        let row = EnsembleScalingReport {
            name: "grid_5x5_sweep".to_string(),
            runs: insts.len(),
            lanes,
            ns_per_run: ns,
            speedup_vs_serial: serial_ns / ns,
        };
        println!(
            "{:<28} runs={:<3} lanes {:<2} {:>12.0} ns/run   {:>5.2}x vs serial",
            row.name, row.runs, row.lanes, row.ns_per_run, row.speedup_vs_serial
        );
        rows.push(row);
    }
    rows
}

/// Fault-seam overhead on the fused engine: the same workload with and
/// without a zero-fault plan attached, timed best-of-`repeats`.
fn measure_fault_overhead_fused(w: &EngineWorkload, repeats: usize) -> FaultOverheadReport {
    use wardrop_core::fault::FaultPlan;

    let policy = uniform(w);
    let phases = w.config.num_phases;
    let faulted_config = w.config.clone().with_faults(FaultPlan::new(0));
    let plain_traj = engine::run(&w.instance, &policy, &w.f0, &w.config);
    let faulted_traj = engine::run(&w.instance, &policy, &w.f0, &faulted_config);
    let bit_identical = plain_traj.phases == faulted_traj.phases
        && plain_traj.final_flow == faulted_traj.final_flow;
    let (plain_ns, faulted_ns) = interleaved_best_of(
        repeats,
        || {
            let traj = engine::run(&w.instance, &policy, &w.f0, &w.config);
            assert_eq!(traj.len(), phases);
        },
        || {
            let traj = engine::run(&w.instance, &policy, &w.f0, &faulted_config);
            assert_eq!(traj.len(), phases);
        },
    );
    finish_fault_overhead(
        w.name,
        "fused",
        phases,
        repeats,
        plain_ns,
        faulted_ns,
        bit_identical,
    )
}

/// Fault-seam overhead on the implicit-path backend.
fn measure_fault_overhead_implicit(w: &EdgeEngineWorkload, repeats: usize) -> FaultOverheadReport {
    use wardrop_core::fault::FaultPlan;

    let policy = wardrop_core::policy::SmoothPolicy::new(
        wardrop_core::Uniform,
        wardrop_core::Linear::new(w.edge.latency_upper_bound().max(f64::MIN_POSITIVE)),
    );
    let seeding = PathSeeding::default();
    let phases = w.config.num_phases;
    let faulted_config = w.config.clone().with_faults(FaultPlan::new(0));
    let plain_traj = wardrop_core::edge_engine::run_edge(&w.edge, &policy, &w.config, &seeding)
        .expect("plain implicit run");
    let faulted_traj =
        wardrop_core::edge_engine::run_edge(&w.edge, &policy, &faulted_config, &seeding)
            .expect("zero-fault implicit run");
    let bit_identical = plain_traj.phases == faulted_traj.phases
        && plain_traj.final_flow == faulted_traj.final_flow;
    let (plain_ns, faulted_ns) = interleaved_best_of(
        repeats,
        || {
            let traj = wardrop_core::edge_engine::run_edge(&w.edge, &policy, &w.config, &seeding)
                .expect("plain implicit run");
            assert_eq!(traj.len(), phases);
        },
        || {
            let traj =
                wardrop_core::edge_engine::run_edge(&w.edge, &policy, &faulted_config, &seeding)
                    .expect("zero-fault implicit run");
            assert_eq!(traj.len(), phases);
        },
    );
    finish_fault_overhead(
        w.name,
        "implicit-path",
        phases,
        repeats,
        plain_ns,
        faulted_ns,
        bit_identical,
    )
}

/// Best-of-`repeats` for two variants with the samples *interleaved*
/// (a-b-a-b…), so slow background-load drift hits both floors alike —
/// two sequential best-of blocks would attribute the drift to
/// whichever variant ran second.
fn interleaved_best_of(repeats: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..repeats {
        best_a = best_a.min(time_best_of(1, &mut a));
        best_b = best_b.min(time_best_of(1, &mut b));
    }
    (best_a, best_b)
}

fn finish_fault_overhead(
    name: &str,
    backend: &str,
    phases: usize,
    repeats: usize,
    plain_ns: f64,
    faulted_ns: f64,
    bit_identical: bool,
) -> FaultOverheadReport {
    let report = FaultOverheadReport {
        name: name.to_string(),
        backend: backend.to_string(),
        phases,
        repeats,
        ns_per_phase_plain: plain_ns / phases as f64,
        ns_per_phase_zero_fault: faulted_ns / phases as f64,
        overhead_fraction: (faulted_ns - plain_ns) / plain_ns,
        bit_identical,
    };
    println!(
        "{:<28} {:<13} plain {:>12.0} ns/phase   zero-fault {:>12.0} ns/phase   overhead {:>6.2}%   bit-identical: {}",
        report.name,
        report.backend,
        report.ns_per_phase_plain,
        report.ns_per_phase_zero_fault,
        report.overhead_fraction * 100.0,
        report.bit_identical
    );
    report
}

/// Whether the fused engine's rate structure is matrix-free for this
/// workload's (uniform + linear) policy.
fn workload_matrix_free(w: &EngineWorkload) -> bool {
    let board = BulletinBoard::post(&w.instance, &w.f0, 0.0);
    uniform(w).phase_rates(&w.instance, &board).is_matrix_free()
}

fn measure(w: &EngineWorkload, repeats: usize) -> WorkloadReport {
    let phases = w.config.num_phases;
    // Warm-up: one fused run (touches the instance, populates caches).
    let warm = engine::run(&w.instance, &uniform(w), &w.f0, &w.config);
    assert_eq!(warm.len(), phases, "workload must run all phases");

    let fused_ns = time_best_of(repeats, || {
        let traj = engine::run(&w.instance, &uniform(w), &w.f0, &w.config);
        assert_eq!(traj.len(), phases);
    });
    let baseline_ns = time_best_of(repeats, || {
        let traj = baseline::run_naive(&w.instance, &uniform(w), &w.f0, &w.config);
        assert_eq!(traj.len(), phases);
    });

    let report = WorkloadReport {
        name: w.name.to_string(),
        paths: w.instance.num_paths(),
        edges: w.instance.num_edges(),
        incidences: w.instance.incidence_count(),
        phases,
        repeats,
        ns_per_phase_fused: fused_ns / phases as f64,
        ns_per_phase_baseline: baseline_ns / phases as f64,
        speedup: baseline_ns / fused_ns,
        matrix_free: workload_matrix_free(w),
    };
    println!(
        "{:<28} |P|={:<6} fused {:>12.0} ns/phase   baseline {:>12.0} ns/phase   speedup {:.2}x",
        report.name,
        report.paths,
        report.ns_per_phase_fused,
        report.ns_per_phase_baseline,
        report.speedup
    );
    report
}

fn measure_frontier(w: &EngineWorkload) -> FrontierReport {
    let phases = w.config.num_phases;
    let warm = engine::run(&w.instance, &uniform(w), &w.f0, &w.config);
    assert_eq!(warm.len(), phases, "frontier workload must run all phases");
    let fused_ns = time_best_of(2, || {
        let traj = engine::run(&w.instance, &uniform(w), &w.f0, &w.config);
        assert_eq!(traj.len(), phases);
    });
    let report = FrontierReport {
        name: w.name.to_string(),
        paths: w.instance.num_paths(),
        edges: w.instance.num_edges(),
        incidences: w.instance.incidence_count(),
        phases,
        ns_per_phase_fused: fused_ns / phases as f64,
        matrix_free: workload_matrix_free(w),
    };
    println!(
        "{:<28} |P|={:<6} fused {:>12.0} ns/phase   (matrix-free only: dense would need ~{:.1} GB)",
        report.name,
        report.paths,
        report.ns_per_phase_fused,
        (report.paths as f64).powi(2) * 8.0 / 1e9
    );
    report
}

/// Every stock sampling × migration combination
/// ([`stock_policy_zoo`] — the same shared definition the agreement
/// tests cover), checked for matrix-free rate construction on a small
/// probe instance.
fn policy_zoo() -> Vec<PolicyZooReport> {
    let inst = builders::braess();
    let f = FlowVec::uniform(&inst);
    let board = BulletinBoard::post(&inst, &f, 0.0);
    stock_policy_zoo(inst.latency_upper_bound())
        .iter()
        .map(|p| PolicyZooReport {
            policy: p.name(),
            matrix_free: p.phase_rates(&inst, &board).is_matrix_free(),
        })
        .collect()
}

fn uniform(
    w: &EngineWorkload,
) -> wardrop_core::SmoothPolicy<wardrop_core::Uniform, wardrop_core::Linear> {
    wardrop_core::policy::uniform_linear(&w.instance)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let mut workloads = Vec::new();
    let mut reconfig = Vec::new();
    let mut measure_reconfig = |w: &EngineWorkload, events: usize| {
        let ns = time_apply_event(w, events);
        println!(
            "{:<28} |P|={:<6} apply_event {:>12.0} ns",
            w.name,
            w.instance.num_paths(),
            ns
        );
        reconfig.push(ReconfigReport {
            name: w.name.to_string(),
            paths: w.instance.num_paths(),
            edges: w.instance.num_edges(),
            events,
            ns_per_apply_event: ns,
        });
    };
    for w in small_engine_workloads() {
        workloads.push(measure(&w, 5));
        measure_reconfig(&w, 64);
    }
    for w in large_engine_workloads() {
        // The grid_8x8 acceptance workload (and its speedup field) is
        // reported even in smoke mode; its dense baseline costs a few
        // seconds, dominated entirely by the Θ(P²) reference itself.
        if smoke && w.name != "grid_8x8" {
            continue;
        }
        workloads.push(measure(&w, if smoke { 1 } else { 2 }));
        measure_reconfig(&w, 16);
    }
    let frontier: Vec<FrontierReport> = frontier_engine_workloads()
        .iter()
        .map(measure_frontier)
        .collect();

    // Thread scaling: smoke trims the sweep to 1/2 workers on the two
    // medium workloads; full sweeps 1/2/4/8 and adds the grid_12x12
    // frontier row (705 432 paths — enumeration alone takes a while,
    // so it is built only when needed).
    let mut thread_scaling = Vec::new();
    let scaling_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut scaling_workloads: Vec<EngineWorkload> = Vec::new();
    for w in large_engine_workloads() {
        if w.name == "grid_8x8" {
            scaling_workloads.push(w);
        }
    }
    for w in frontier_engine_workloads() {
        if !smoke || w.name == "many_commodity_grid_8x8x6" {
            scaling_workloads.push(w);
        }
    }
    if !smoke {
        scaling_workloads.push(grid_12x12_frontier_workload());
    }
    for w in &scaling_workloads {
        thread_scaling.extend(measure_thread_scaling(
            w,
            scaling_counts,
            if smoke { 1 } else { 2 },
        ));
    }
    for row in &thread_scaling {
        assert!(
            row.bit_identical,
            "{} at {} threads diverged from the serial trajectory",
            row.name, row.threads
        );
    }

    // The implicit-path backend's cost is network-sized, so even the
    // grid_14x14 frontier row runs in both modes.
    let implicit_path: Vec<ImplicitPathReport> = implicit_path_workloads()
        .iter()
        .map(|w| measure_implicit_path(w, if smoke { 1 } else { 3 }))
        .collect();
    assert!(
        implicit_path
            .iter()
            .any(|r| r.name == "grid_14x14" && !r.enumerated_feasible && r.phases >= 40),
        "the grid_14x14 frontier row is the acceptance criterion"
    );

    let ensemble = measure_ensemble_scaling();

    // Fault-seam overhead: the zero-fault plan must be free (< 1%
    // ns/phase) and bit-identical on both backends.
    let mut fault_overhead = Vec::new();
    // Repeats are higher than elsewhere: the claim is a sub-1%
    // difference between two near-identical timings, so the best-of
    // floor has to be solid (the runs themselves are short).
    for w in large_engine_workloads() {
        if w.name == "grid_8x8" {
            fault_overhead.push(measure_fault_overhead_fused(&w, if smoke { 3 } else { 5 }));
        }
    }
    for w in implicit_path_workloads() {
        if w.name == "grid_14x14" {
            fault_overhead.push(measure_fault_overhead_implicit(
                &w,
                if smoke { 8 } else { 12 },
            ));
        }
    }
    assert_eq!(
        fault_overhead.len(),
        2,
        "fault overhead must cover grid_8x8 (fused) and grid_14x14 (implicit-path)"
    );
    for row in &fault_overhead {
        assert!(
            row.bit_identical,
            "{} ({}): zero-fault plan diverged from the plain run",
            row.name, row.backend
        );
        assert!(
            row.overhead_fraction < 0.01,
            "{} ({}): zero-fault overhead {:.2}% exceeds 1%",
            row.name,
            row.backend,
            row.overhead_fraction * 100.0
        );
    }

    let zoo = policy_zoo();
    for entry in &zoo {
        assert!(
            entry.matrix_free,
            "stock policy {} fell back to dense rates",
            entry.policy
        );
    }

    let report = BenchReport {
        schema: "wardrop-bench/engine/v6".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        workloads,
        frontier,
        policy_zoo: zoo,
        reconfig,
        implicit_path,
        thread_scaling,
        ensemble,
        fault_overhead,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
}
