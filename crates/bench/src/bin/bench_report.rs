//! Machine-readable engine-performance report.
//!
//! Runs the engine workloads of `wardrop-bench` through both the fused
//! phase loop (`wardrop_core::engine::run`) and the frozen pre-fused
//! reference (`wardrop_bench::baseline::run_naive`), and writes
//! `BENCH_engine.json` with ns/phase for each — so the performance
//! trajectory of the hot path is tracked in-repo from PR to PR and CI
//! can surface regressions.
//!
//! Usage:
//!
//! ```text
//! bench_report [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` restricts to the small workloads (seconds, CI-friendly);
//! the default also runs the large `grid_8x8` acceptance workload.

use std::time::Instant;

use serde::Serialize;
use wardrop_bench::{
    baseline, large_engine_workloads, small_engine_workloads, time_apply_event, EngineWorkload,
};
use wardrop_core::engine;

#[derive(Debug, Serialize)]
struct WorkloadReport {
    name: String,
    paths: usize,
    edges: usize,
    incidences: usize,
    phases: usize,
    repeats: usize,
    ns_per_phase_fused: f64,
    ns_per_phase_baseline: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct ReconfigReport {
    name: String,
    paths: usize,
    edges: usize,
    events: usize,
    ns_per_apply_event: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    schema: String,
    mode: String,
    workloads: Vec<WorkloadReport>,
    /// Scenario-reconfiguration cost: one `apply_event` (latency
    /// mutation + incremental invariant refresh + in-place
    /// re-evaluation) per entry.
    reconfig: Vec<ReconfigReport>,
}

/// Best-of-`repeats` wall-clock nanoseconds for `f`.
fn time_best_of<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

fn measure(w: &EngineWorkload, repeats: usize) -> WorkloadReport {
    let phases = w.config.num_phases;
    // Warm-up: one fused run (touches the instance, populates caches).
    let warm = engine::run(&w.instance, &uniform(w), &w.f0, &w.config);
    assert_eq!(warm.len(), phases, "workload must run all phases");

    let fused_ns = time_best_of(repeats, || {
        let traj = engine::run(&w.instance, &uniform(w), &w.f0, &w.config);
        assert_eq!(traj.len(), phases);
    });
    let baseline_ns = time_best_of(repeats, || {
        let traj = baseline::run_naive(&w.instance, &uniform(w), &w.f0, &w.config);
        assert_eq!(traj.len(), phases);
    });

    let report = WorkloadReport {
        name: w.name.to_string(),
        paths: w.instance.num_paths(),
        edges: w.instance.num_edges(),
        incidences: w.instance.incidence_count(),
        phases,
        repeats,
        ns_per_phase_fused: fused_ns / phases as f64,
        ns_per_phase_baseline: baseline_ns / phases as f64,
        speedup: baseline_ns / fused_ns,
    };
    println!(
        "{:<28} |P|={:<6} fused {:>12.0} ns/phase   baseline {:>12.0} ns/phase   speedup {:.2}x",
        report.name,
        report.paths,
        report.ns_per_phase_fused,
        report.ns_per_phase_baseline,
        report.speedup
    );
    report
}

fn uniform(
    w: &EngineWorkload,
) -> wardrop_core::SmoothPolicy<wardrop_core::Uniform, wardrop_core::Linear> {
    wardrop_core::policy::uniform_linear(&w.instance)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let mut workloads = Vec::new();
    let mut reconfig = Vec::new();
    let mut measure_reconfig = |w: &EngineWorkload, events: usize| {
        let ns = time_apply_event(w, events);
        println!(
            "{:<28} |P|={:<6} apply_event {:>12.0} ns",
            w.name,
            w.instance.num_paths(),
            ns
        );
        reconfig.push(ReconfigReport {
            name: w.name.to_string(),
            paths: w.instance.num_paths(),
            edges: w.instance.num_edges(),
            events,
            ns_per_apply_event: ns,
        });
    };
    for w in small_engine_workloads() {
        workloads.push(measure(&w, 5));
        measure_reconfig(&w, 64);
    }
    if !smoke {
        for w in large_engine_workloads() {
            workloads.push(measure(&w, 2));
            measure_reconfig(&w, 16);
        }
    }

    let report = BenchReport {
        schema: "wardrop-bench/engine/v2".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        workloads,
        reconfig,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
}
