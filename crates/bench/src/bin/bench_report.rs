//! Machine-readable engine-performance report.
//!
//! Runs the engine workloads of `wardrop-bench` through both the fused
//! phase loop (`wardrop_core::engine::run`) and the frozen dense
//! reference (`wardrop_bench::baseline::run_naive`), and writes
//! `BENCH_engine.json` with ns/phase for each — so the performance
//! trajectory of the hot path is tracked in-repo from PR to PR and CI
//! can surface regressions.
//!
//! Schema v3 additions (matrix-free phase rates):
//!
//! * every comparison workload records whether the fused run used the
//!   matrix-free rate representation (`matrix_free`);
//! * a `frontier` section times workloads whose path counts put the
//!   dense representation out of reach (P ≥ 40 000: `grid_10x10` has
//!   48 620 paths ≈ 19 GB of rate matrix) — fused-only, 40 phases;
//! * a `policy_zoo` section asserts, for every stock sampling ×
//!   migration combination, that the engine takes the matrix-free
//!   path;
//! * the `grid_8x8` acceptance workload (and its `speedup` field) is
//!   reported in **both** smoke and full mode.
//!
//! Usage:
//!
//! ```text
//! bench_report [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` restricts the dense-baseline comparisons to the small
//! workloads plus `grid_8x8` (CI-friendly); the default also runs the
//! remaining large workloads. Both modes run the frontier workloads.

use std::time::Instant;

use serde::Serialize;
use wardrop_bench::{
    baseline, frontier_engine_workloads, large_engine_workloads, small_engine_workloads,
    time_apply_event, EngineWorkload,
};
use wardrop_core::board::BulletinBoard;
use wardrop_core::engine;
use wardrop_core::policy::{stock_policy_zoo, ReroutingPolicy};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;

#[derive(Debug, Serialize)]
struct WorkloadReport {
    name: String,
    paths: usize,
    edges: usize,
    incidences: usize,
    phases: usize,
    repeats: usize,
    ns_per_phase_fused: f64,
    ns_per_phase_baseline: f64,
    speedup: f64,
    /// Whether the fused engine used the matrix-free rate
    /// representation for this workload's policy.
    matrix_free: bool,
}

#[derive(Debug, Serialize)]
struct FrontierReport {
    name: String,
    paths: usize,
    edges: usize,
    incidences: usize,
    phases: usize,
    ns_per_phase_fused: f64,
    matrix_free: bool,
}

#[derive(Debug, Serialize)]
struct PolicyZooReport {
    policy: String,
    matrix_free: bool,
}

#[derive(Debug, Serialize)]
struct ReconfigReport {
    name: String,
    paths: usize,
    edges: usize,
    events: usize,
    ns_per_apply_event: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    schema: String,
    mode: String,
    workloads: Vec<WorkloadReport>,
    /// Matrix-free-only workloads: P far beyond the dense baseline's
    /// reach, timed fused-only.
    frontier: Vec<FrontierReport>,
    /// One entry per stock sampling × migration combination, recording
    /// that the matrix-free path is active.
    policy_zoo: Vec<PolicyZooReport>,
    /// Scenario-reconfiguration cost: one `apply_event` (latency
    /// mutation + incremental invariant refresh + in-place
    /// re-evaluation) per entry.
    reconfig: Vec<ReconfigReport>,
}

/// Best-of-`repeats` wall-clock nanoseconds for `f`.
fn time_best_of<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// Whether the fused engine's rate structure is matrix-free for this
/// workload's (uniform + linear) policy.
fn workload_matrix_free(w: &EngineWorkload) -> bool {
    let board = BulletinBoard::post(&w.instance, &w.f0, 0.0);
    uniform(w).phase_rates(&w.instance, &board).is_matrix_free()
}

fn measure(w: &EngineWorkload, repeats: usize) -> WorkloadReport {
    let phases = w.config.num_phases;
    // Warm-up: one fused run (touches the instance, populates caches).
    let warm = engine::run(&w.instance, &uniform(w), &w.f0, &w.config);
    assert_eq!(warm.len(), phases, "workload must run all phases");

    let fused_ns = time_best_of(repeats, || {
        let traj = engine::run(&w.instance, &uniform(w), &w.f0, &w.config);
        assert_eq!(traj.len(), phases);
    });
    let baseline_ns = time_best_of(repeats, || {
        let traj = baseline::run_naive(&w.instance, &uniform(w), &w.f0, &w.config);
        assert_eq!(traj.len(), phases);
    });

    let report = WorkloadReport {
        name: w.name.to_string(),
        paths: w.instance.num_paths(),
        edges: w.instance.num_edges(),
        incidences: w.instance.incidence_count(),
        phases,
        repeats,
        ns_per_phase_fused: fused_ns / phases as f64,
        ns_per_phase_baseline: baseline_ns / phases as f64,
        speedup: baseline_ns / fused_ns,
        matrix_free: workload_matrix_free(w),
    };
    println!(
        "{:<28} |P|={:<6} fused {:>12.0} ns/phase   baseline {:>12.0} ns/phase   speedup {:.2}x",
        report.name,
        report.paths,
        report.ns_per_phase_fused,
        report.ns_per_phase_baseline,
        report.speedup
    );
    report
}

fn measure_frontier(w: &EngineWorkload) -> FrontierReport {
    let phases = w.config.num_phases;
    let warm = engine::run(&w.instance, &uniform(w), &w.f0, &w.config);
    assert_eq!(warm.len(), phases, "frontier workload must run all phases");
    let fused_ns = time_best_of(2, || {
        let traj = engine::run(&w.instance, &uniform(w), &w.f0, &w.config);
        assert_eq!(traj.len(), phases);
    });
    let report = FrontierReport {
        name: w.name.to_string(),
        paths: w.instance.num_paths(),
        edges: w.instance.num_edges(),
        incidences: w.instance.incidence_count(),
        phases,
        ns_per_phase_fused: fused_ns / phases as f64,
        matrix_free: workload_matrix_free(w),
    };
    println!(
        "{:<28} |P|={:<6} fused {:>12.0} ns/phase   (matrix-free only: dense would need ~{:.1} GB)",
        report.name,
        report.paths,
        report.ns_per_phase_fused,
        (report.paths as f64).powi(2) * 8.0 / 1e9
    );
    report
}

/// Every stock sampling × migration combination
/// ([`stock_policy_zoo`] — the same shared definition the agreement
/// tests cover), checked for matrix-free rate construction on a small
/// probe instance.
fn policy_zoo() -> Vec<PolicyZooReport> {
    let inst = builders::braess();
    let f = FlowVec::uniform(&inst);
    let board = BulletinBoard::post(&inst, &f, 0.0);
    stock_policy_zoo(inst.latency_upper_bound())
        .iter()
        .map(|p| PolicyZooReport {
            policy: p.name(),
            matrix_free: p.phase_rates(&inst, &board).is_matrix_free(),
        })
        .collect()
}

fn uniform(
    w: &EngineWorkload,
) -> wardrop_core::SmoothPolicy<wardrop_core::Uniform, wardrop_core::Linear> {
    wardrop_core::policy::uniform_linear(&w.instance)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let mut workloads = Vec::new();
    let mut reconfig = Vec::new();
    let mut measure_reconfig = |w: &EngineWorkload, events: usize| {
        let ns = time_apply_event(w, events);
        println!(
            "{:<28} |P|={:<6} apply_event {:>12.0} ns",
            w.name,
            w.instance.num_paths(),
            ns
        );
        reconfig.push(ReconfigReport {
            name: w.name.to_string(),
            paths: w.instance.num_paths(),
            edges: w.instance.num_edges(),
            events,
            ns_per_apply_event: ns,
        });
    };
    for w in small_engine_workloads() {
        workloads.push(measure(&w, 5));
        measure_reconfig(&w, 64);
    }
    for w in large_engine_workloads() {
        // The grid_8x8 acceptance workload (and its speedup field) is
        // reported even in smoke mode; its dense baseline costs a few
        // seconds, dominated entirely by the Θ(P²) reference itself.
        if smoke && w.name != "grid_8x8" {
            continue;
        }
        workloads.push(measure(&w, if smoke { 1 } else { 2 }));
        measure_reconfig(&w, 16);
    }
    let frontier: Vec<FrontierReport> = frontier_engine_workloads()
        .iter()
        .map(measure_frontier)
        .collect();

    let zoo = policy_zoo();
    for entry in &zoo {
        assert!(
            entry.matrix_free,
            "stock policy {} fell back to dense rates",
            entry.policy
        );
    }

    let report = BenchReport {
        schema: "wardrop-bench/engine/v3".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        workloads,
        frontier,
        policy_zoo: zoo,
        reconfig,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
}
