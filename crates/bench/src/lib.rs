//! # wardrop-bench
//!
//! Criterion benchmarks for the reproduction of *Adaptive routing with
//! stale information*. One bench per reproduced experiment (E1–E7,
//! matching `DESIGN.md` and the `wardrop-experiments` binaries) plus
//! engine-performance benches. Run with `cargo bench`.
//!
//! Shared workload constructors live in [`workloads`] so the benches,
//! `bench_report` and the experiment binaries measure the same
//! configurations; the frozen pre-fused reference lives in
//! [`baseline`].

#![forbid(unsafe_code)]

pub mod baseline;
pub mod workloads;

pub use workloads::{
    frontier_engine_workloads, grid_12x12_frontier_workload, implicit_path_workloads,
    large_engine_workloads, small_engine_workloads, time_apply_event, time_best_of, workload,
    EdgeEngineWorkload, EngineWorkload,
};
