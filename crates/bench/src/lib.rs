//! # wardrop-bench
//!
//! Criterion benchmarks for the reproduction of *Adaptive routing with
//! stale information*. One bench per reproduced experiment (E1–E7,
//! matching `DESIGN.md` and the `wardrop-experiments` binaries) plus
//! engine-performance benches. Run with `cargo bench`.
//!
//! Shared workload constructors live here so the benches measure the
//! same configurations the experiment binaries report on.

#![forbid(unsafe_code)]

use wardrop_core::engine::SimulationConfig;
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;

/// The standard benchmark workload: instance, initial flow and a
/// simulation configuration of `phases` phases at period `t`.
pub fn workload(
    instance: Instance,
    t: f64,
    phases: usize,
) -> (Instance, FlowVec, SimulationConfig) {
    let f0 = FlowVec::uniform(&instance);
    let config = SimulationConfig::new(t, phases);
    (instance, f0, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wardrop_net::builders;

    #[test]
    fn workload_is_well_formed() {
        let (inst, f0, config) = workload(builders::braess(), 0.1, 10);
        assert!(f0.is_feasible(&inst, 1e-9));
        assert_eq!(config.num_phases, 10);
    }
}
