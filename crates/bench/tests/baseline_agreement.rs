//! The fused engine and the frozen pre-fused baseline must produce the
//! same physics: identical phase records (up to float re-association)
//! and identical final flows on shared workloads. This both validates
//! the fused pipeline against an independent implementation and keeps
//! the baseline honest as a benchmark reference.

use wardrop_bench::{baseline, small_engine_workloads};
use wardrop_core::engine;
use wardrop_core::policy::{replicator, stock_policy_zoo, uniform_linear};

const TOL: f64 = 1e-12;

#[test]
fn fused_run_matches_baseline_on_small_workloads() {
    for w in small_engine_workloads() {
        let policy = uniform_linear(&w.instance);
        let fused = engine::run(&w.instance, &policy, &w.f0, &w.config);
        let naive = baseline::run_naive(&w.instance, &policy, &w.f0, &w.config);
        assert_eq!(fused.len(), naive.len(), "{}", w.name);
        for (a, b) in fused.phases.iter().zip(&naive.phases) {
            assert_eq!(a.index, b.index);
            assert!((a.start_time - b.start_time).abs() < TOL, "{}", w.name);
            assert!(
                (a.potential_start - b.potential_start).abs() < TOL,
                "{}: Φ start {} vs {}",
                w.name,
                a.potential_start,
                b.potential_start
            );
            assert!(
                (a.potential_end - b.potential_end).abs() < TOL,
                "{}",
                w.name
            );
            assert!((a.virtual_gain - b.virtual_gain).abs() < TOL, "{}", w.name);
            assert!(
                (a.avg_latency_start - b.avg_latency_start).abs() < TOL,
                "{}",
                w.name
            );
            assert!(
                (a.max_regret_start - b.max_regret_start).abs() < TOL,
                "{}",
                w.name
            );
            for (x, y) in a.unsatisfied.iter().zip(&b.unsatisfied) {
                assert!((x - y).abs() < TOL, "{}", w.name);
            }
            for (x, y) in a.weakly_unsatisfied.iter().zip(&b.weakly_unsatisfied) {
                assert!((x - y).abs() < TOL, "{}", w.name);
            }
        }
        assert!(
            fused.final_flow.linf_distance(&naive.final_flow) < TOL,
            "{}: final flows diverge",
            w.name
        );
    }
}

/// The matrix-free fused engine and the dense-matrix baseline must
/// produce the same trajectory for **every** stock sampling ×
/// migration combination — the acceptance contract of the separable
/// kernels (≤ 1e-9 end to end; in practice far tighter).
#[test]
fn matrix_free_fused_matches_dense_baseline_for_whole_policy_zoo() {
    let w = &small_engine_workloads()[0];
    let lmax = w.instance.latency_upper_bound().max(f64::MIN_POSITIVE);
    let policies = stock_policy_zoo(lmax);
    assert_eq!(policies.len(), 12);
    for policy in &policies {
        let fused = engine::run(&w.instance, policy.as_ref(), &w.f0, &w.config);
        let naive = baseline::run_naive(&w.instance, policy.as_ref(), &w.f0, &w.config);
        assert_eq!(fused.len(), naive.len(), "{}", policy.name());
        for (a, b) in fused.phases.iter().zip(&naive.phases) {
            assert!(
                (a.potential_end - b.potential_end).abs() < 1e-9,
                "{}: phase {} Φ {} vs {}",
                policy.name(),
                a.index,
                a.potential_end,
                b.potential_end
            );
            assert!(
                (a.max_regret_start - b.max_regret_start).abs() < 1e-9,
                "{}",
                policy.name()
            );
        }
        assert!(
            fused.final_flow.linf_distance(&naive.final_flow) < 1e-9,
            "{}: final flows diverge by {}",
            policy.name(),
            fused.final_flow.linf_distance(&naive.final_flow)
        );
    }
}

#[test]
fn fused_run_matches_baseline_under_replicator_and_jitter() {
    let mut w = wardrop_bench::small_engine_workloads().remove(1);
    w.config = w.config.with_jitter(0.4, 13).with_deltas(vec![0.01, 0.1]);
    let policy = replicator(&w.instance);
    let fused = engine::run(&w.instance, &policy, &w.f0, &w.config);
    let naive = baseline::run_naive(&w.instance, &policy, &w.f0, &w.config);
    assert_eq!(fused.len(), naive.len());
    for (a, b) in fused.phases.iter().zip(&naive.phases) {
        assert!((a.potential_end - b.potential_end).abs() < TOL);
        assert!((a.virtual_gain - b.virtual_gain).abs() < TOL);
        assert_eq!(a.unsatisfied.len(), 2);
    }
    assert!(fused.final_flow.linf_distance(&naive.final_flow) < TOL);
}
