//! Interleaved serial-vs-pooled apply timing (drift-cancelling).
use std::time::Instant;
use wardrop_core::board::BulletinBoard;
use wardrop_core::policy::{uniform_linear, ApplyScratch, ReroutingPolicy};
use wardrop_core::WorkerPool;
use wardrop_net::{builders, flow::FlowVec};

fn main() {
    let inst = builders::grid_network(10, 10, 7);
    let f = FlowVec::uniform(&inst);
    let board = BulletinBoard::post(&inst, &f, 0.0);
    let policy = uniform_linear(&inst);
    let rates = policy.phase_rates(&inst, &board);
    let pool = WorkerPool::new(2);
    let mut scratch = ApplyScratch::new();
    let mut out = vec![0.0; inst.num_paths()];
    // warm
    for _ in 0..5 {
        rates.apply(f.values(), &mut out);
        rates.apply_with(f.values(), &mut out, Some(&pool), &mut scratch);
    }
    let (mut s_ns, mut p_ns) = (0u128, 0u128);
    for _ in 0..200 {
        let t = Instant::now();
        rates.apply(f.values(), &mut out);
        s_ns += t.elapsed().as_nanos();
        let t = Instant::now();
        rates.apply_with(f.values(), &mut out, Some(&pool), &mut scratch);
        p_ns += t.elapsed().as_nanos();
    }
    println!(
        "serial {:.1} us/apply   pooled(2) {:.1} us/apply   ratio {:.2}",
        s_ns as f64 / 200.0 / 1e3,
        p_ns as f64 / 200.0 / 1e3,
        s_ns as f64 / p_ns as f64
    );
}
