use wardrop_bench::{frontier_engine_workloads, time_best_of};
use wardrop_core::engine::{self, Parallelism};
fn main() {
    for w in frontier_engine_workloads() {
        let policy = wardrop_core::policy::uniform_linear(&w.instance);
        for threads in [1usize, 2] {
            let config = w
                .config
                .clone()
                .with_parallelism(Parallelism::Threads(threads));
            let mut sim = engine::Simulation::new(&w.instance, &policy, &w.f0, &config);
            let _ = sim.drive();
            let ns = time_best_of(2, || {
                sim.reset(&w.f0, &config);
                let t = sim.drive();
                assert_eq!(t.len(), w.config.num_phases);
            });
            println!(
                "{} t{}: {:.2} ms/phase",
                w.name,
                threads,
                ns / w.config.num_phases as f64 / 1e6
            );
        }
    }
}
