//! E6 bench: the finite-population discrete-event simulator — run cost
//! as N grows (the workload behind the fluid-limit validation).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use wardrop_agents::sim::{run_agents, AgentPolicy, AgentSimConfig};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;

fn bench_agents(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_agents");
    group.sample_size(20);
    let inst = builders::braess();
    let f0 = FlowVec::uniform(&inst);
    for n in [1_000u64, 10_000, 100_000] {
        // 10 phases of length 0.25 at rate N ⇒ ~2.5·N activations.
        let config = AgentSimConfig::new(n, 0.25, 10, 42);
        group.bench_function(format!("replicator_n{n}_10_phases"), |b| {
            b.iter(|| {
                run_agents(
                    black_box(&inst),
                    &AgentPolicy::replicator(&inst),
                    black_box(&f0),
                    &config,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_agents);
criterion_main!(benches);
