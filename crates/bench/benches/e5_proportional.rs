//! E5 bench: the Theorem 7 workload — replicator dynamics on random
//! parallel links, scaling in m.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use wardrop_core::engine::{run, SimulationConfig};
use wardrop_core::policy::replicator;
use wardrop_core::theory::safe_update_period;
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;

fn bench_thm7(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_proportional");
    for m in [8usize, 32, 128] {
        let inst = builders::standard_random_links(m, 11);
        let alpha = 1.0 / inst.latency_upper_bound();
        let t = safe_update_period(&inst, alpha).min(1.0);
        let policy = replicator(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(t, 100).with_deltas(vec![0.2]);
        group.bench_function(format!("replicator_m{m}_100_phases"), |b| {
            b.iter(|| run(black_box(&inst), &policy, black_box(&f0), &config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thm7);
criterion_main!(benches);
