//! E7 bench: the Frank–Wolfe equilibrium solver on growing instances,
//! both objectives.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use wardrop_analysis::frank_wolfe::{minimise, FrankWolfeConfig, Objective};
use wardrop_net::builders;

fn bench_frank_wolfe(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_frank_wolfe");
    let config = FrankWolfeConfig::default();
    for (name, inst) in [
        ("braess", builders::braess()),
        ("parallel32", builders::standard_random_links(32, 5)),
        ("grid4x4", builders::grid_network(4, 4, 5)),
    ] {
        group.bench_function(format!("{name}_potential"), |b| {
            b.iter(|| minimise(black_box(&inst), Objective::Potential, &config));
        });
        group.bench_function(format!("{name}_social_cost"), |b| {
            b.iter(|| minimise(black_box(&inst), Objective::SocialCost, &config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_frank_wolfe);
criterion_main!(benches);
