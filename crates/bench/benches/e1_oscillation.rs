//! E1 bench: the §3.2 best-response oscillation workload.
//!
//! Measures the cost of simulating the two-link oscillator under best
//! response (closed-form phases) as the phase count grows, and the
//! cost of the closed-form evaluation itself.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use wardrop_core::best_response::BestResponse;
use wardrop_core::engine::{run, SimulationConfig};
use wardrop_core::theory::oscillation;
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;

fn bench_oscillation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_oscillation");
    let inst = builders::two_link_oscillator(2.0);
    let t_period = 0.5;
    let f1 = oscillation::initial_flow(t_period);
    let f0 = FlowVec::from_values(&inst, vec![f1, 1.0 - f1]).expect("feasible");

    for phases in [64usize, 256, 1024] {
        group.bench_function(format!("best_response_{phases}_phases"), |b| {
            let config = SimulationConfig::new(t_period, phases);
            b.iter(|| {
                run(
                    black_box(&inst),
                    &BestResponse::new(),
                    black_box(&f0),
                    &config,
                )
            });
        });
    }

    group.bench_function("closed_form_orbit_1000_points", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000 {
                acc += oscillation::orbit_f1(black_box(i as f64 * 0.01), t_period);
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_oscillation);
criterion_main!(benches);
