//! E3 bench: potential machinery — Φ, virtual gain, error terms, and
//! the Lemma 3 residual — on instances of growing size.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;
use wardrop_net::potential::{error_terms, lemma3_residual, potential, virtual_gain};

fn bench_potential(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_potential");
    for m in [8usize, 64, 256] {
        let inst = builders::standard_random_links(m, 7);
        let a = FlowVec::uniform(&inst);
        let b = FlowVec::concentrated(&inst);
        group.bench_function(format!("potential_m{m}"), |bch| {
            bch.iter(|| potential(black_box(&inst), black_box(&a)));
        });
        group.bench_function(format!("virtual_gain_m{m}"), |bch| {
            bch.iter(|| virtual_gain(black_box(&inst), black_box(&a), black_box(&b)));
        });
        group.bench_function(format!("error_terms_m{m}"), |bch| {
            bch.iter(|| error_terms(black_box(&inst), black_box(&a), black_box(&b)));
        });
        group.bench_function(format!("lemma3_residual_m{m}"), |bch| {
            bch.iter(|| lemma3_residual(black_box(&inst), black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_potential);
criterion_main!(benches);
