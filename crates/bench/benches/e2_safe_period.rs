//! E2 bench: the Corollary 5 safe-period convergence workload
//! (uniform + α-scaled-linear on Braess / grid, T = T*).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use wardrop_core::engine::{run, SimulationConfig};
use wardrop_core::migration::ScaledLinear;
use wardrop_core::policy::SmoothPolicy;
use wardrop_core::sampling::Uniform;
use wardrop_core::theory::safe_update_period;
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;

fn bench_safe_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_safe_period");
    for (name, inst) in [
        ("braess", builders::braess()),
        ("grid3x3", builders::grid_network(3, 3, 17)),
    ] {
        let alpha = 1.0 / inst.latency_upper_bound();
        let t_star = safe_update_period(&inst, alpha);
        let policy = SmoothPolicy::new(Uniform, ScaledLinear::new(alpha));
        let f0 = FlowVec::concentrated(&inst);
        let config = SimulationConfig::new(t_star, 200);
        group.bench_function(format!("{name}_200_phases_at_t_star"), |b| {
            b.iter(|| run(black_box(&inst), &policy, black_box(&f0), &config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_safe_period);
criterion_main!(benches);
