//! Engine-performance benches: integrator comparison (Euler vs RK4 vs
//! uniformization), phase-rate construction, and path enumeration.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use wardrop_core::board::BulletinBoard;
use wardrop_core::integrator::Integrator;
use wardrop_core::policy::{uniform_linear, ReroutingPolicy};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;
use wardrop_net::graph::NodeId;
use wardrop_net::path::enumerate_simple_paths;

fn bench_integrators(c: &mut Criterion) {
    let mut group = c.benchmark_group("integrators");
    for m in [16usize, 128] {
        let inst = builders::random_parallel_links(m, 1.0, 0.2, 2.0, 3);
        let f = FlowVec::concentrated(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let policy = uniform_linear(&inst);
        let rates = policy.phase_rates(&inst, &board);
        for (name, integ) in [
            ("euler_dt1e-2", Integrator::Euler { dt: 0.01 }),
            ("rk4_dt5e-2", Integrator::Rk4 { dt: 0.05 }),
            ("uniformization", Integrator::Uniformization { tol: 1e-12 }),
        ] {
            group.bench_function(format!("{name}_m{m}"), |b| {
                b.iter(|| {
                    let mut g = f.values().to_vec();
                    integ.advance(black_box(&rates), &mut g, 1.0);
                    g
                });
            });
        }
    }
    group.finish();
}

fn bench_phase_rates(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_rates");
    for m in [16usize, 128, 512] {
        let inst = builders::random_parallel_links(m, 1.0, 0.2, 2.0, 3);
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let policy = uniform_linear(&inst);
        group.bench_function(format!("build_m{m}"), |b| {
            b.iter(|| policy.phase_rates(black_box(&inst), black_box(&board)));
        });
    }
    group.finish();
}

fn bench_path_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_enumeration");
    for (rows, cols) in [(4usize, 4usize), (5, 5), (6, 6)] {
        let inst = builders::grid_network(rows, cols, 1);
        let g = inst.graph();
        let s = NodeId::from_index(0);
        let t = NodeId::from_index(g.node_count() - 1);
        group.bench_function(format!("grid{rows}x{cols}"), |b| {
            b.iter(|| enumerate_simple_paths(black_box(g), s, t, 1_000_000).expect("under cap"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_integrators,
    bench_phase_rates,
    bench_path_enumeration
);
criterion_main!(benches);
