//! Engine-performance benches: the fused phase loop on large
//! grid/multi-commodity workloads (against the frozen pre-fused
//! baseline), integrator comparison (Euler vs RK4 vs uniformization),
//! phase-rate construction, and path enumeration.
//!
//! For a machine-readable record of the fused-vs-baseline numbers, run
//! the `bench_report` binary (writes `BENCH_engine.json`).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use wardrop_bench::{
    baseline, frontier_engine_workloads, large_engine_workloads, small_engine_workloads,
};
use wardrop_core::board::BulletinBoard;
use wardrop_core::engine::{self, Parallelism};
use wardrop_core::ensemble::{run_many, RunSpec};
use wardrop_core::integrator::Integrator;
use wardrop_core::policy::{uniform_linear, ReroutingPolicy};
use wardrop_core::WorkerPool;
use wardrop_net::builders;
use wardrop_net::eval::EvalWorkspace;
use wardrop_net::flow::FlowVec;
use wardrop_net::graph::NodeId;
use wardrop_net::path::enumerate_simple_paths;

fn bench_engine_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_run");
    group.sample_size(5);
    for w in small_engine_workloads()
        .iter()
        .chain(&large_engine_workloads())
    {
        let policy = uniform_linear(&w.instance);
        group.bench_function(format!("fused_{}", w.name), |b| {
            b.iter(|| engine::run(black_box(&w.instance), &policy, &w.f0, &w.config));
        });
        group.bench_function(format!("baseline_{}", w.name), |b| {
            b.iter(|| baseline::run_naive(black_box(&w.instance), &policy, &w.f0, &w.config));
        });
    }
    // Frontier workloads (P ≥ 40 000): matrix-free only — the dense
    // baseline cannot even allocate its rate matrix at this scale.
    for w in frontier_engine_workloads() {
        let policy = uniform_linear(&w.instance);
        group.bench_function(format!("fused_{}", w.name), |b| {
            b.iter(|| engine::run(black_box(&w.instance), &policy, &w.f0, &w.config));
        });
    }
    group.finish();
}

fn bench_parallel_engine(c: &mut Criterion) {
    // The deterministic multi-threaded engine: the same fused runs at
    // 1/2/4 lanes (bit-identical trajectories — see tests/parallel.rs),
    // plus ensemble sweep throughput across lanes. Pools are built
    // outside the timed closure via a long-lived Simulation.
    let mut group = c.benchmark_group("parallel_engine");
    group.sample_size(5);
    for w in large_engine_workloads()
        .into_iter()
        .filter(|w| w.name == "grid_8x8")
        .chain(frontier_engine_workloads())
    {
        let policy = uniform_linear(&w.instance);
        for threads in [1usize, 2, 4] {
            let config = w
                .config
                .clone()
                .with_parallelism(Parallelism::Threads(threads));
            let mut sim = engine::Simulation::new(&w.instance, &policy, &w.f0, &config);
            group.bench_function(format!("fused_{}_t{}", w.name, threads), |b| {
                b.iter(|| {
                    sim.reset(&w.f0, &config);
                    while sim.step().is_some() {}
                    black_box(sim.flow().values()[0])
                });
            });
        }
    }
    // Ensemble sweep: 8 independent small runs per iteration.
    let insts: Vec<wardrop_net::Instance> = (0..8)
        .map(|s| builders::grid_network(5, 5, 200 + s))
        .collect();
    let policy = uniform_linear(&insts[0]);
    let config = engine::SimulationConfig::new(0.5, 40);
    for lanes in [1usize, 2, 4] {
        let pool = WorkerPool::new(lanes);
        group.bench_function(format!("ensemble_grid5x5_l{lanes}"), |b| {
            b.iter(|| {
                let specs: Vec<RunSpec<'_, _>> = insts
                    .iter()
                    .map(|i| RunSpec::new(i, &policy, FlowVec::uniform(i), config.clone()))
                    .collect();
                black_box(run_many(Some(&pool), &specs).len())
            });
        });
    }
    group.finish();
}

fn bench_fused_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_evaluation");
    for (name, inst) in [
        ("grid_6x6", builders::grid_network(6, 6, 7)),
        ("grid_8x8", builders::grid_network(8, 8, 7)),
    ] {
        let f = FlowVec::uniform(&inst);
        let mut ws = EvalWorkspace::new(&inst);
        group.bench_function(format!("workspace_{name}"), |b| {
            b.iter(|| ws.evaluate(black_box(&inst), black_box(&f)));
        });
        group.bench_function(format!("naive_chain_{name}"), |b| {
            // The pre-fused per-phase metric chain: six allocating
            // recomputations of the edge/path-latency pipeline.
            b.iter(|| {
                let phi = wardrop_net::potential::potential(&inst, &f);
                let avg = f.avg_latency(&inst);
                let regret = wardrop_net::equilibrium::max_regret(&inst, &f, 1e-12);
                let u = wardrop_net::equilibrium::unsatisfied_volume(&inst, &f, 0.05);
                let wu = wardrop_net::equilibrium::weakly_unsatisfied_volume(&inst, &f, 0.05);
                let mins = f.commodity_min_latencies(&inst);
                (phi, avg, regret, u, wu, mins)
            });
        });
    }
    group.finish();
}

fn bench_integrators(c: &mut Criterion) {
    let mut group = c.benchmark_group("integrators");
    for m in [16usize, 128] {
        let inst = builders::standard_random_links(m, 3);
        let f = FlowVec::concentrated(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let policy = uniform_linear(&inst);
        let rates = policy.phase_rates(&inst, &board);
        for (name, integ) in [
            ("euler_dt1e-2", Integrator::Euler { dt: 0.01 }),
            ("rk4_dt5e-2", Integrator::Rk4 { dt: 0.05 }),
            ("uniformization", Integrator::Uniformization { tol: 1e-12 }),
        ] {
            group.bench_function(format!("{name}_m{m}"), |b| {
                b.iter(|| {
                    let mut g = f.values().to_vec();
                    integ.advance(black_box(&rates), &mut g, 1.0);
                    g
                });
            });
        }
    }
    group.finish();
}

fn bench_phase_rates(c: &mut Criterion) {
    // Dense Θ(P²) vs matrix-free O(P log P): refill a pre-shaped rate
    // structure (the engine's steady-state operation) and apply the
    // generator once, in both representations.
    let mut group = c.benchmark_group("phase_rates");
    for m in [16usize, 128, 512, 2048] {
        let inst = builders::standard_random_links(m, 3);
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let policy = uniform_linear(&inst);
        let mut free = wardrop_core::PhaseRates::for_instance(&inst);
        let mut dense = wardrop_core::PhaseRates::dense_for_instance(&inst);
        group.bench_function(format!("matrixfree_build_m{m}"), |b| {
            b.iter(|| policy.phase_rates_into(black_box(&inst), black_box(&board), &mut free));
        });
        group.bench_function(format!("dense_build_m{m}"), |b| {
            b.iter(|| policy.phase_rates_into(black_box(&inst), black_box(&board), &mut dense));
        });
        policy.phase_rates_into(&inst, &board, &mut free);
        policy.phase_rates_into(&inst, &board, &mut dense);
        assert!(free.is_matrix_free() && !dense.is_matrix_free());
        let mut out = vec![0.0; inst.num_paths()];
        group.bench_function(format!("matrixfree_apply_m{m}"), |b| {
            b.iter(|| free.apply(black_box(f.values()), black_box(&mut out)));
        });
        group.bench_function(format!("dense_apply_m{m}"), |b| {
            b.iter(|| dense.apply(black_box(f.values()), black_box(&mut out)));
        });
    }
    group.finish();
}

fn bench_path_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_enumeration");
    for (rows, cols) in [(4usize, 4usize), (5, 5), (6, 6)] {
        let inst = builders::grid_network(rows, cols, 1);
        let g = inst.graph();
        let s = NodeId::from_index(0);
        let t = NodeId::from_index(g.node_count() - 1);
        group.bench_function(format!("grid{rows}x{cols}"), |b| {
            b.iter(|| enumerate_simple_paths(black_box(g), s, t, 1_000_000).expect("under cap"));
        });
    }
    group.finish();
}

/// The incremental-evaluation kernels: the O(P) change scan, the
/// sparse `evaluate_delta` call against a handful of moved paths, and
/// the steady-state engine step with delta evaluation on vs off.
fn bench_delta_kernels(c: &mut Criterion) {
    use wardrop_core::policy::PhaseRates;
    use wardrop_net::{ChangeSet, DeltaEval};

    let mut group = c.benchmark_group("delta_kernels");
    group.sample_size(10);
    let inst = builders::grid_network(8, 8, 7);
    let f0 = FlowVec::uniform(&inst);

    // The O(P) change scan over a near-converged pair: 8 pairs of
    // paths trade 1e-6 of mass (total demand preserved, 16 changed).
    let rates = PhaseRates::for_instance(&inst);
    let before = f0.values().to_vec();
    let mut after = before.clone();
    for i in 0..8 {
        after[100 + 2 * i] += 1e-6;
        after[101 + 2 * i] -= 1e-6;
    }
    let mut changes = ChangeSet::for_instance(&inst);
    group.bench_function("changed_paths_scan_grid_8x8", |b| {
        b.iter(|| {
            rates.changed_paths_into(black_box(&before), black_box(&after), 1e-15, &mut changes)
        });
    });

    // Sparse evaluate_delta with those 8 paths listed vs the full
    // fused evaluation of the same flow.
    let moved = FlowVec::from_values(&inst, after.clone()).expect("feasible-enough for eval");
    let mut ws = EvalWorkspace::new(&inst);
    let mut scratch = DeltaEval::new(&inst).with_resync_interval(usize::MAX);
    ws.evaluate_delta(&inst, &f0, &changes, &mut scratch); // prime
    rates.changed_paths_into(&before, &after, 1e-15, &mut changes);
    group.bench_function("sparse_delta_eval_grid_8x8", |b| {
        b.iter(|| ws.evaluate_delta(black_box(&inst), black_box(&moved), &changes, &mut scratch));
    });
    group.bench_function("full_eval_grid_8x8", |b| {
        b.iter(|| ws.evaluate(black_box(&inst), black_box(&moved)));
    });

    // Steady-state engine step, delta on vs off (same dynamics).
    let policy = uniform_linear(&inst);
    for (label, delta_on) in [("delta_step_grid_8x8", true), ("full_step_grid_8x8", false)] {
        let mut config = engine::SimulationConfig::new(1.0, 1_000_000).with_deltas(vec![]);
        if delta_on {
            config = config.with_delta_eval();
        }
        let mut sim = engine::Simulation::new(&inst, &policy, &f0, &config);
        for _ in 0..50 {
            sim.step().expect("warm-up phase");
        }
        group.bench_function(label, |b| {
            b.iter(|| sim.step().expect("steady-state phase"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_run,
    bench_parallel_engine,
    bench_fused_evaluation,
    bench_integrators,
    bench_phase_rates,
    bench_path_enumeration
);
criterion_group!(delta_kernels, bench_delta_kernels);
criterion_main!(benches, delta_kernels);
