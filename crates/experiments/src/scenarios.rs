//! The named non-stationary scenario registry behind `wardrop-lab`
//! and experiment E10.
//!
//! Each [`NamedScenario`] bundles an instance, a phase-indexed
//! [`Scenario`] of shocks, and a run configuration whose update period
//! is chosen at the *worst-case* safe period across epochs
//! (`T = min_k T*_k` with `T*_k = 1/(4 D α β_k)` for the epoch's
//! mutated instance) — so Corollary 5 guarantees recovery after every
//! shock. [`NamedScenario::run`] drives the fluid engine through the
//! scenario and produces the per-epoch [`TrackingReport`].

use serde::Serialize;
use wardrop_analysis::tracking::{tracking_report, TrackingReport};
use wardrop_core::engine::{run_scenario_audited, SimulationConfig};
use wardrop_core::fault::{FaultPlan, FaultStats};
use wardrop_core::guard::{GuardConfig, GuardLog};
use wardrop_core::policy::uniform_linear;
use wardrop_core::theory::safe_update_period;
use wardrop_core::trajectory::Trajectory;
use wardrop_core::ReroutingPolicy;
use wardrop_net::builders;
use wardrop_net::instance::Instance;
use wardrop_net::scenario::{Event, EventAction, Scenario};
use wardrop_net::{EdgeId, FlowVec};

/// A ready-to-run non-stationary workload.
#[derive(Debug)]
pub struct NamedScenario {
    /// Registry key (`wardrop-lab <name>`).
    pub name: &'static str,
    /// One-line description for `--list` output.
    pub description: &'static str,
    /// The base instance the scenario mutates.
    pub instance: Instance,
    /// The shock sequence.
    pub scenario: Scenario,
    /// Update period of the run, `≤ min_k T*_k`.
    pub update_period: f64,
    /// Total phase budget (covers every epoch).
    pub num_phases: usize,
    /// The `δ` of the recovery notion: paths more than `δ` above their
    /// commodity minimum count as unsatisfied. Coarser than the
    /// default metric column because near-threshold paths drain on a
    /// `ℓmax/(σ δ)` timescale — recovery within an epoch needs a `δ`
    /// the policy can actually clear.
    pub delta: f64,
    /// The `ε` of the recovery notion (volume tolerance).
    pub eps: f64,
    /// Optional bulletin-board fault plan applied at post time.
    pub faults: Option<FaultPlan>,
    /// Optional AIMD smoothness governor riding along with the run.
    pub guard: Option<GuardConfig>,
}

/// The audit trail of a (possibly faulted) scenario run.
#[derive(Debug, Clone, Serialize)]
pub struct RunAudit {
    /// Counters of what the fault layer did (`None`: no plan).
    pub fault_stats: Option<FaultStats>,
    /// The governor's intervention log (`None`: no governor).
    pub guard_log: Option<GuardLog>,
}

/// Per-epoch row of the JSON artefact `wardrop-lab` / E10 emit.
#[derive(Debug, Serialize)]
pub struct EpochRow {
    /// Scenario name.
    pub scenario: String,
    /// Epoch index.
    pub epoch: usize,
    /// First phase of the epoch.
    pub start_phase: usize,
    /// One past the epoch's last phase.
    pub end_phase: usize,
    /// Update period the run used.
    pub update_period: f64,
    /// The epoch instance's safe period `T*`.
    pub safe_period: f64,
    /// Certified per-epoch optimal potential.
    pub optimum_potential: f64,
    /// Phases until the epoch re-entered a `(δ,ε)`-equilibrium.
    pub recovery_phases: Option<usize>,
    /// Potential gap at the shock.
    pub initial_gap: f64,
    /// Potential gap at the epoch's end.
    pub final_gap: f64,
    /// Time-weighted accumulated potential gap of the epoch.
    pub tracking_regret: f64,
}

impl NamedScenario {
    /// Runs the scenario under uniform sampling + linear migration at
    /// the registered update period and computes the tracking report.
    ///
    /// # Panics
    ///
    /// Panics if an event fails to apply (registry scenarios are valid
    /// by construction).
    pub fn run(&self) -> (Trajectory, TrackingReport) {
        let (traj, report, _) = self.run_audited();
        (traj, report)
    }

    /// Like [`NamedScenario::run`], but also returns the fault/guard
    /// audit trail of the run.
    ///
    /// # Panics
    ///
    /// Panics if an event fails to apply (registry scenarios are valid
    /// by construction).
    pub fn run_audited(&self) -> (Trajectory, TrackingReport, RunAudit) {
        let policy = uniform_linear(&self.instance);
        let alpha = policy.smoothness().expect("linear migration is smooth");
        let config = self.config();
        let (traj, fault_stats, guard_log) = run_scenario_audited(
            &self.instance,
            &policy,
            &FlowVec::uniform(&self.instance),
            &config,
            &self.scenario,
        )
        .expect("registry scenarios apply cleanly");
        let report = tracking_report(&self.instance, &self.scenario, &traj, alpha, self.eps)
            .expect("replay of a clean scenario cannot fail");
        (
            traj,
            report,
            RunAudit {
                fault_stats,
                guard_log,
            },
        )
    }

    /// The engine configuration this registry entry runs under — the
    /// registered update period, phase budget and `δ` column, plus the
    /// fault plan and guard when present. `wardrop-serve` builds its
    /// daemon runs from this, so a served scenario is phase-for-phase
    /// the same run the batch experiments execute.
    pub fn config(&self) -> SimulationConfig {
        let mut config = SimulationConfig::new(self.update_period, self.num_phases)
            .with_deltas(vec![self.delta]);
        if let Some(plan) = &self.faults {
            config = config.with_faults(plan.clone());
        }
        if let Some(guard) = &self.guard {
            config = config.with_guard(guard.clone());
        }
        config
    }

    /// Flattens a tracking report into JSON-ready rows.
    pub fn rows(&self, report: &TrackingReport) -> Vec<EpochRow> {
        report
            .epochs
            .iter()
            .map(|e| EpochRow {
                scenario: self.name.to_string(),
                epoch: e.epoch,
                start_phase: e.start_phase,
                end_phase: e.end_phase,
                update_period: self.update_period,
                safe_period: e.safe_period,
                optimum_potential: e.optimum_potential,
                recovery_phases: e.recovery_phases,
                initial_gap: e.initial_gap,
                final_gap: e.final_gap,
                tracking_regret: e.tracking_regret,
            })
            .collect()
    }
}

/// The worst-case (smallest) safe period across the scenario's epochs
/// for the uniform+linear policy on `instance`.
fn min_safe_period(instance: &Instance, scenario: &Scenario) -> f64 {
    let alpha = uniform_linear(instance)
        .smoothness()
        .expect("linear migration is smooth");
    scenario
        .epoch_instances(instance)
        .expect("registry scenarios apply cleanly")
        .iter()
        .map(|inst| safe_update_period(inst, alpha))
        .fold(f64::INFINITY, f64::min)
}

/// Assembles a registry entry from a *timing-free* scenario template.
///
/// Epochs are sized in **time units**, not phases: the update period is
/// the worst-case safe period across epochs (`T = min_k T*_k`), and
/// each epoch then gets `⌈epoch_time / T⌉` phases. This keeps the
/// wall-clock budget per epoch comparable across scenarios — a severe
/// shock shrinks `T` and automatically receives proportionally more
/// (shorter) phases, matching the `1/T` scaling of the Theorem 6
/// bad-phase bound.
///
/// `make(l)` builds the scenario with epoch length `l` phases; the
/// event *set* (and hence `min T*`) must not depend on `l`.
fn assemble(
    name: &'static str,
    description: &'static str,
    instance: Instance,
    num_epochs: usize,
    smoke: bool,
    make: impl Fn(usize) -> Scenario,
) -> NamedScenario {
    let update_period = min_safe_period(&instance, &make(1));
    let epoch_time = if smoke { 120.0 } else { 400.0 };
    let l = (epoch_time / update_period).ceil() as usize;
    NamedScenario {
        name,
        description,
        scenario: make(l),
        instance,
        update_period,
        num_phases: num_epochs * l,
        delta: 0.25,
        eps: 0.1,
        faults: None,
        guard: None,
    }
}

/// Morning peak on a shared grid: commodity 0's demand surges from
/// 0.5 to 0.75 while an arterial edge slows 2.5×, then both relax.
pub fn rush_hour(smoke: bool) -> NamedScenario {
    let instance = builders::multi_commodity_grid(3, 3, 5);
    let edge = EdgeId::from_index(0);
    assemble(
        "rush-hour",
        "demand surge + arterial slowdown on a shared grid, then relaxation",
        instance,
        3,
        smoke,
        |l| {
            Scenario::new("rush-hour")
                .with_event(Event {
                    at_phase: l,
                    label: "rush-hour onset".into(),
                    actions: vec![
                        EventAction::SetDemand {
                            commodity: 0,
                            demand: 0.75,
                        },
                        EventAction::ScaleLatency { edge, factor: 2.5 },
                    ],
                })
                .with_event(Event {
                    at_phase: 2 * l,
                    label: "rush-hour relaxes".into(),
                    actions: vec![
                        EventAction::SetDemand {
                            commodity: 0,
                            demand: 0.5,
                        },
                        EventAction::ScaleLatency {
                            edge,
                            factor: 1.0 / 2.5,
                        },
                    ],
                })
        },
    )
}

/// A link's latency jumps 8× (failure), then is repaired.
pub fn link_failure(smoke: bool) -> NamedScenario {
    let instance = builders::grid_network(3, 3, 17);
    let edge = EdgeId::from_index(0);
    assemble(
        "link-failure",
        "8× latency spike on a grid edge, then repair",
        instance,
        3,
        smoke,
        |l| {
            Scenario::new("link-failure")
                .with_event(Event::at(
                    l,
                    "link fails",
                    EventAction::ScaleLatency { edge, factor: 8.0 },
                ))
                .with_event(Event::at(
                    2 * l,
                    "link repaired",
                    EventAction::ScaleLatency {
                        edge,
                        factor: 1.0 / 8.0,
                    },
                ))
        },
    )
}

/// A one-sided demand shock: commodity 0 jumps from 0.5 to 0.9 of the
/// total and stays there.
pub fn flash_crowd(smoke: bool) -> NamedScenario {
    let instance = builders::multi_commodity_grid(4, 4, 2024);
    assemble(
        "flash-crowd",
        "permanent 0.5 → 0.9 demand shift between grid commodities",
        instance,
        2,
        smoke,
        |l| {
            Scenario::new("flash-crowd").with_event(Event::at(
                l,
                "flash crowd arrives",
                EventAction::SetDemand {
                    commodity: 0,
                    demand: 0.9,
                },
            ))
        },
    )
}

/// Staggered degradations: two parallel links slow 4× in turn, each
/// repaired one epoch later.
pub fn rolling_degradation(smoke: bool) -> NamedScenario {
    let instance = builders::standard_random_links(8, 7);
    let e0 = EdgeId::from_index(0);
    let e1 = EdgeId::from_index(1);
    assemble(
        "rolling-degradation",
        "staggered 4× degradations and repairs across parallel links",
        instance,
        5,
        smoke,
        |l| {
            Scenario::new("rolling-degradation")
                .with_event(Event::at(
                    l,
                    "link 0 degrades",
                    EventAction::ScaleLatency {
                        edge: e0,
                        factor: 4.0,
                    },
                ))
                .with_event(Event::at(
                    2 * l,
                    "link 1 degrades",
                    EventAction::ScaleLatency {
                        edge: e1,
                        factor: 4.0,
                    },
                ))
                .with_event(Event::at(
                    3 * l,
                    "link 0 repaired",
                    EventAction::ScaleLatency {
                        edge: e0,
                        factor: 0.25,
                    },
                ))
                .with_event(Event::at(
                    4 * l,
                    "link 1 repaired",
                    EventAction::ScaleLatency {
                        edge: e1,
                        factor: 0.25,
                    },
                ))
        },
    )
}

/// The rush-hour workload on a flaky board: posts drop 15% of the
/// time, survive only 85% per edge and carry 3% multiplicative noise.
/// The AIMD governor rides along, so every epoch still recovers.
pub fn flaky_rush_hour(smoke: bool) -> NamedScenario {
    let mut s = rush_hour(smoke);
    s.name = "flaky-rush-hour";
    s.description =
        "rush-hour under a flaky board (drops, partial updates, noise) with the AIMD governor";
    s.faults = Some(
        FaultPlan::new(42)
            .with_drop_probability(0.15)
            .expect("valid drop probability")
            .with_partial_updates(0.85)
            .expect("valid refresh fraction")
            .with_noise(0.03)
            .expect("valid noise amplitude"),
    );
    s.guard = Some(GuardConfig::default());
    s
}

/// The link-failure workload with the board going dark for the first
/// quarter of each post-shock epoch: the population keeps routing on
/// pre-shock information until the outage lifts.
pub fn board_outage(smoke: bool) -> NamedScenario {
    let mut s = link_failure(smoke);
    let l = s.num_phases / 3; // link_failure has three equal epochs
    s.name = "board-outage";
    s.description = "link failure with the board dark for the first quarter of each shock epoch";
    s.faults = Some(
        FaultPlan::new(7)
            .with_outage(l + 1, l + 1 + l / 4)
            .expect("valid outage window")
            .with_outage(2 * l + 1, 2 * l + 1 + l / 4)
            .expect("valid outage window"),
    );
    s.guard = Some(GuardConfig::default());
    s
}

/// Every registered scenario (the `--smoke` flag shortens epochs).
pub fn all(smoke: bool) -> Vec<NamedScenario> {
    vec![
        rush_hour(smoke),
        link_failure(smoke),
        flash_crowd(smoke),
        rolling_degradation(smoke),
        flaky_rush_hour(smoke),
        board_outage(smoke),
    ]
}

/// Looks up a scenario by registry name.
pub fn by_name(name: &str, smoke: bool) -> Option<NamedScenario> {
    all(smoke).into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<_> = all(true).iter().map(|s| s.name).collect();
        assert!(names.len() >= 3, "need at least three named scenarios");
        for n in &names {
            assert!(by_name(n, true).is_some());
        }
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
        assert!(by_name("no-such-scenario", true).is_none());
    }

    #[test]
    fn registered_periods_respect_every_epoch_safe_period() {
        for s in all(true) {
            let worst = min_safe_period(&s.instance, &s.scenario);
            assert!(
                s.update_period <= worst + 1e-12,
                "{}: T = {} exceeds min T* = {worst}",
                s.name,
                s.update_period
            );
            // The phase budget covers every event.
            assert!(s.scenario.last_event_phase().unwrap() < s.num_phases);
        }
    }

    #[test]
    fn smoke_fault_scenarios_recover_with_the_governor() {
        for s in [flaky_rush_hour(true), board_outage(true)] {
            let (traj, report, audit) = s.run_audited();
            assert_eq!(traj.len(), s.num_phases);
            assert!(
                report.all_recovered,
                "{}: epochs {:#?}",
                s.name, report.epochs
            );
            let stats = audit.fault_stats.expect("fault plan attached");
            assert!(
                stats.dropped + stats.degraded > 0,
                "{}: the fault plan never fired ({stats:?})",
                s.name
            );
            assert!(audit.guard_log.is_some(), "{}: governor attached", s.name);
        }
    }

    #[test]
    fn smoke_rush_hour_recovers_after_every_shock() {
        let s = rush_hour(true);
        let (traj, report) = s.run();
        assert_eq!(traj.len(), s.num_phases);
        assert!(report.all_recovered, "epochs: {:#?}", report.epochs);
        assert_eq!(s.rows(&report).len(), report.epochs.len());
    }
}
