//! E11 — robustness: a faulted bulletin board breaks fixed-α
//! adaptation; the AIMD smoothness governor recovers.
//!
//! Three claims, one table each:
//!
//! 1. **Fixed α fails, the governor survives.** On the two-link
//!    oscillator with per-commodity board staleness (`T_k` posts per
//!    refresh), the *effective* update period is `T_k · T`, far past
//!    the divergence threshold: the fixed-α run oscillates and never
//!    re-enters a `(δ, ε)`-equilibrium within the phase budget. The
//!    same run with the AIMD governor throttles the effective α until
//!    the effective `α·T` product is safe again and recovers.
//! 2. **§3.2 under faults.** The best-response oscillator keeps its
//!    closed-form orbit when the board is faulted (staleness only
//!    rescales the period), while the smooth governed policy converges
//!    on the same faulted board.
//! 3. **Measured divergence threshold vs `T*`.** Two bisections over
//!    the update period locate the empirical safe/unsafe boundary,
//!    once for plain potential monotonicity and once for the Lemma-4
//!    slack inequality `ΔΦ ≤ ½V` itself. The Lemma-4 period
//!    `T* = 1/(4Dαβ)` must sit below both (the bound is sound), the
//!    slack inequality must break before monotonicity (it is the
//!    tighter notion), and each bisection pins its threshold inside a
//!    bracket no wider than 2×. The measured margins quantify the
//!    bound's built-in safety factor (≈ 8× small-displacement on the
//!    two-link family: the paper's ¼ constant times the two-sided
//!    curvature).
//!
//! A fourth, smoke-sized section runs the simulated-annealing
//! adversary over fault plans, scored by recovery time, and reports
//! the worst plan found.
//!
//! With `WARDROP_RESULTS_DIR` set, everything is also written to
//! `e11_fault_governor.json`.

use serde::Serialize;
use wardrop_analysis::oscillation::{amplitude, detect_orbit};
use wardrop_analysis::robustness::{
    divergence_threshold, divergence_threshold_by, robustness_report, RobustnessReport,
};
use wardrop_core::best_response::BestResponse;
use wardrop_core::engine::{run, SimulationConfig};
use wardrop_core::fault::FaultPlan;
use wardrop_core::guard::GuardConfig;
use wardrop_core::policy::uniform_linear;
use wardrop_core::theory::{oscillation, safe_update_period};
use wardrop_core::{ReroutingPolicy, Simulation};
use wardrop_experiments::adversary::{anneal_fault_plan, AdversaryConfig};
use wardrop_experiments::{banner, fmt_g, write_json, Table};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;

/// Recovery tolerance of the experiment (volume above δ).
const EPS: f64 = 0.05;

#[derive(Debug, Serialize)]
struct VariantRow {
    variant: String,
    recovered: bool,
    recovery_phase: Option<usize>,
    monotonicity_violations: usize,
    worst_excursion: f64,
    final_potential: f64,
    guard_violations: Option<usize>,
    guard_min_scale: Option<f64>,
}

#[derive(Debug, Serialize)]
struct E11Report {
    staleness_period: usize,
    update_period: f64,
    safe_period: f64,
    phase_budget: usize,
    variants: Vec<VariantRow>,
    oscillator_fault_amplitude: f64,
    oscillator_governed_amplitude: f64,
    theoretical_safe_period: f64,
    measured_monotonicity_threshold: f64,
    monotonicity_margin: f64,
    measured_lemma4_threshold: f64,
    lemma4_margin: f64,
    adversary_baseline_score: f64,
    adversary_best_score: f64,
    adversary_best_plan: FaultPlan,
}

/// Runs the stale-board workload and summarises recovery; with
/// `guard`, the AIMD governor rides along.
fn run_variant(
    label: &str,
    plan: &FaultPlan,
    guard: Option<GuardConfig>,
    t_period: f64,
    phases: usize,
) -> (VariantRow, RobustnessReport) {
    let inst = builders::two_link_oscillator(4.0);
    let policy = uniform_linear(&inst);
    let f0 = FlowVec::from_values(&inst, vec![0.8, 0.2]).expect("feasible");
    let mut config = SimulationConfig::new(t_period, phases)
        .with_deltas(vec![0.1])
        .with_faults(plan.clone());
    if let Some(g) = guard {
        config = config.with_guard(g);
    }
    let mut sim = Simulation::new(&inst, &policy, &f0, &config);
    let traj = sim.drive();
    let report = robustness_report(&traj, EPS);
    let log = sim.guard_log();
    let row = VariantRow {
        variant: label.to_string(),
        recovered: report.recovered,
        recovery_phase: report.recovery_phase,
        monotonicity_violations: report.monotonicity_violations,
        worst_excursion: report.worst_excursion,
        final_potential: report.final_potential,
        guard_violations: log.map(|l| l.violations()),
        guard_min_scale: log.and_then(|l| l.min_scale()),
    };
    (row, report)
}

fn main() {
    banner(
        "E11",
        "faulted board: fixed α fails to recover, the AIMD governor survives",
    );

    let inst = builders::two_link_oscillator(4.0);
    let policy = uniform_linear(&inst);
    let alpha = policy.smoothness().expect("linear migration is smooth");
    let t_star = safe_update_period(&inst, alpha);

    // ── 1. fixed α vs governor under per-commodity staleness ────────
    // The board refreshes only every K posts: the effective period is
    // K·T ≫ the divergence threshold, so fixed α oscillates forever.
    let staleness = 64usize;
    let phases = 1200usize;
    let plan = FaultPlan::new(11)
        .with_staleness(0, staleness)
        .expect("valid staleness period");
    let (fixed, fixed_report) = run_variant("fixed α", &plan, None, t_star, phases);
    let (governed, governed_report) = run_variant(
        "AIMD governor",
        &plan,
        Some(GuardConfig::default()),
        t_star,
        phases,
    );

    let mut table = Table::new(vec![
        "variant",
        "recovered",
        "recovery phase",
        "Φ-violations",
        "worst excursion",
        "Φ final",
        "guard backoffs",
        "min throttle",
    ]);
    for row in [&fixed, &governed] {
        table.row(vec![
            row.variant.clone(),
            row.recovered.to_string(),
            row.recovery_phase
                .map_or("never".to_string(), |p| p.to_string()),
            row.monotonicity_violations.to_string(),
            fmt_g(row.worst_excursion),
            fmt_g(row.final_potential),
            row.guard_violations
                .map_or("—".to_string(), |v| v.to_string()),
            row.guard_min_scale.map_or("—".to_string(), fmt_g),
        ]);
    }
    println!(
        "\nstale board (T_k = {staleness} posts) at T = T* = {}, {} phases:",
        fmt_g(t_star),
        phases
    );
    table.print();
    assert!(
        !fixed_report.recovered,
        "fixed α unexpectedly recovered under the stale board"
    );
    assert!(
        governed_report.recovered,
        "the governor failed to recover within the phase budget"
    );

    // ── 2. the §3.2 oscillator with a faulted board ─────────────────
    // Best response keeps oscillating on the faulted board; the
    // governed smooth policy converges on the same faulted board.
    let t_osc = 0.5;
    let f1 = oscillation::initial_flow(t_osc);
    let f0 = FlowVec::from_values(&inst, vec![f1, 1.0 - f1]).expect("feasible");
    let osc_plan = FaultPlan::new(5)
        .with_staleness(0, 2)
        .expect("valid staleness period");
    let osc_config = SimulationConfig::new(t_osc, 64)
        .with_flows()
        .with_faults(osc_plan.clone());
    let br_traj = run(&inst, &BestResponse::new(), &f0, &osc_config);
    let br_amp = amplitude(&br_traj, 16);
    let br_orbit = detect_orbit(&br_traj, 16, 8, 1e-9);
    let gov_config = SimulationConfig::new(t_osc, 256)
        .with_flows()
        .with_deltas(vec![0.1])
        .with_faults(osc_plan)
        .with_guard(GuardConfig::default());
    let gov_traj = run(&inst, &policy, &f0, &gov_config);
    let gov_amp = amplitude(&gov_traj, 16);
    println!("\n§3.2 oscillator on a faulted board (T_k = 2, T = {t_osc}):");
    println!(
        "   best response : amplitude {} — orbit {:?}",
        fmt_g(br_amp),
        br_orbit
    );
    println!("   governed smooth: amplitude {}", fmt_g(gov_amp));
    assert!(
        br_amp > 0.1,
        "best response stopped oscillating under the faulted board (amp {br_amp})"
    );
    assert!(
        gov_amp < br_amp,
        "the governed smooth policy should end calmer than best response"
    );

    // ── 3. measured divergence thresholds vs T* ─────────────────────
    let sweep_f0 = FlowVec::from_values(&inst, vec![0.8, 0.2]).expect("feasible");
    let sweep_run = |t: f64| {
        let config = SimulationConfig::new(t, 80);
        run(&inst, &policy, &sweep_f0, &config)
    };
    let mono = divergence_threshold(sweep_run, t_star, t_star, 64.0 * t_star, 28, 1e-9);
    let lemma4 = divergence_threshold_by(
        sweep_run,
        |traj| traj.lemma4_violations(1e-9) == 0,
        t_star,
        t_star,
        64.0 * t_star,
        28,
    );
    println!("\nsafe-period thresholds (two-link oscillator, uniform+linear):");
    println!("   theoretical T*              : {}", fmt_g(t_star));
    println!(
        "   Lemma-4 slack breaks at     : {} ({}× T*)",
        fmt_g(lemma4.measured_threshold),
        fmt_g(lemma4.margin)
    );
    println!(
        "   potential first increases at: {} ({}× T*)",
        fmt_g(mono.measured_threshold),
        fmt_g(mono.margin)
    );
    for (name, sweep) in [("lemma4", &lemma4), ("monotonicity", &mono)] {
        assert!(
            sweep.margin >= 1.0,
            "Lemma 4 must be sound: {name} threshold {} < T* {}",
            sweep.measured_threshold,
            sweep.theoretical
        );
        assert!(
            sweep.unsafe_period <= 2.0 * sweep.safe_period,
            "{name} bisection bracket wider than 2×: [{}, {}]",
            sweep.safe_period,
            sweep.unsafe_period
        );
    }
    assert!(
        lemma4.measured_threshold <= mono.measured_threshold,
        "the slack inequality must break before plain monotonicity"
    );

    // ── 4. adversarial search (smoke-sized) ─────────────────────────
    // Score a plan by the phases the governed run needs to recover
    // (budget-capped); the annealer looks for the nastiest plan.
    let adv_phases = 240usize;
    let mut adv_config = AdversaryConfig::new(adv_phases, 23);
    adv_config.iterations = 40;
    let score = |plan: &FaultPlan| {
        let (_, report) = run_variant(
            "adversary probe",
            plan,
            Some(GuardConfig::default()),
            t_star,
            adv_phases,
        );
        report
            .recovery_phase
            .map_or(adv_phases as f64, |p| p as f64)
    };
    let adv = anneal_fault_plan(&adv_config, score);
    println!(
        "\nadversarial search: baseline {} → worst {} recovery phases over {} evaluations ({} accepted)",
        fmt_g(adv.baseline_score),
        fmt_g(adv.best_score),
        adv.evaluations,
        adv.accepted
    );
    assert!(
        adv.best_score >= adv.baseline_score,
        "the adversary can never do worse than the benign plan"
    );

    let report = E11Report {
        staleness_period: staleness,
        update_period: t_star,
        safe_period: t_star,
        phase_budget: phases,
        variants: vec![fixed, governed],
        oscillator_fault_amplitude: br_amp,
        oscillator_governed_amplitude: gov_amp,
        theoretical_safe_period: t_star,
        measured_monotonicity_threshold: mono.measured_threshold,
        monotonicity_margin: mono.margin,
        measured_lemma4_threshold: lemma4.measured_threshold,
        lemma4_margin: lemma4.margin,
        adversary_baseline_score: adv.baseline_score,
        adversary_best_score: adv.best_score,
        adversary_best_plan: adv.best_plan,
    };
    write_json("e11_fault_governor", &report);
    println!(
        "\nE11 PASS: fixed α failed to recover under the stale board; the AIMD governor recovered."
    );
}
