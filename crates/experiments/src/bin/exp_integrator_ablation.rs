//! E9 — integrator ablation: why uniformization is the default.
//!
//! DESIGN.md calls out the within-phase integrator as the main
//! numerical design choice. This ablation quantifies it: for one phase
//! of the stale-information ODE (a linear CTMC system), compare Euler
//! and RK4 at several step sizes against uniformization at several
//! tolerances, reporting
//!
//! * the L∞ error against a tight reference solution, and
//! * the number of generator applications (`A·f` products — the unit
//!   of work shared by all three schemes).
//!
//! Expected shape: Euler error ∝ dt, RK4 error ∝ dt⁴, uniformization
//! error at the requested tolerance with a handful of products.

use serde::Serialize;
use wardrop_core::board::BulletinBoard;
use wardrop_core::integrator::Integrator;
use wardrop_core::policy::{uniform_linear, ReroutingPolicy};
use wardrop_experiments::{banner, fmt_g, write_json, Table};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;

#[derive(Debug, Serialize)]
struct Row {
    scheme: String,
    generator_applications: usize,
    linf_error: f64,
}

/// Generator applications needed by each scheme for a phase of length
/// `tau` (Euler: 1/step, RK4: 4/step, uniformization: series length).
fn applications(integ: &Integrator, tau: f64, lambda_tau: f64) -> usize {
    match integ {
        Integrator::Euler { dt } => (tau / dt).ceil() as usize,
        Integrator::Rk4 { dt } => 4 * (tau / dt).ceil() as usize,
        Integrator::Uniformization { tol } => {
            // Series truncates once the Poisson tail < tol (plus the
            // k > Λτ guard); estimate via the same stopping rule.
            let mut weight = (-lambda_tau).exp();
            let mut cumulative = weight;
            let mut k = 0usize;
            while (1.0 - cumulative >= *tol || (k as f64) <= lambda_tau) && k < 10_000 {
                k += 1;
                weight *= lambda_tau / k as f64;
                cumulative += weight;
            }
            k
        }
    }
}

fn main() {
    banner(
        "E9",
        "Integrator ablation: Euler vs RK4 vs uniformization on one phase",
    );

    let inst = builders::standard_random_links(16, 31);
    let f0 = FlowVec::concentrated(&inst);
    let board = BulletinBoard::post(&inst, &f0, 0.0);
    let policy = uniform_linear(&inst);
    let rates = policy.phase_rates(&inst, &board);
    let tau = 1.0;
    let lambda_tau = rates.max_exit_rate() * tau;

    // Reference: uniformization at an extreme tolerance.
    let mut reference = f0.values().to_vec();
    Integrator::Uniformization { tol: 1e-15 }.advance(&rates, &mut reference, tau);

    let schemes: Vec<(String, Integrator)> = vec![
        ("euler dt=0.1".into(), Integrator::Euler { dt: 0.1 }),
        ("euler dt=0.01".into(), Integrator::Euler { dt: 0.01 }),
        ("euler dt=0.001".into(), Integrator::Euler { dt: 0.001 }),
        ("rk4 dt=0.25".into(), Integrator::Rk4 { dt: 0.25 }),
        ("rk4 dt=0.1".into(), Integrator::Rk4 { dt: 0.1 }),
        ("rk4 dt=0.05".into(), Integrator::Rk4 { dt: 0.05 }),
        (
            "uniformization tol=1e-6".into(),
            Integrator::Uniformization { tol: 1e-6 },
        ),
        (
            "uniformization tol=1e-9".into(),
            Integrator::Uniformization { tol: 1e-9 },
        ),
        (
            "uniformization tol=1e-12".into(),
            Integrator::Uniformization { tol: 1e-12 },
        ),
    ];

    let mut rows = Vec::new();
    let mut table = Table::new(vec!["scheme", "A·f products", "L∞ error"]);
    for (name, integ) in &schemes {
        let mut f = f0.values().to_vec();
        integ.advance(&rates, &mut f, tau);
        let err = f
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        let apps = applications(integ, tau, lambda_tau);
        table.row(vec![name.clone(), apps.to_string(), fmt_g(err)]);
        rows.push(Row {
            scheme: name.clone(),
            generator_applications: apps,
            linf_error: err,
        });
    }
    table.print();
    write_json("e9_integrator_ablation", &rows);

    // Order checks: Euler first order, RK4 fourth order.
    let err_of = |name: &str| {
        rows.iter()
            .find(|r| r.scheme == name)
            .expect("scheme present")
            .linf_error
    };
    let euler_ratio = err_of("euler dt=0.1") / err_of("euler dt=0.01").max(1e-18);
    assert!(
        (3.0..30.0).contains(&euler_ratio),
        "Euler must be ≈ first order (ratio {euler_ratio})"
    );
    let rk4_ratio = err_of("rk4 dt=0.25") / err_of("rk4 dt=0.05").max(1e-18);
    assert!(
        rk4_ratio > 100.0,
        "RK4 must be ≈ fourth order (ratio {rk4_ratio})"
    );
    // Uniformization achieves its tolerance with few products.
    for (tol, name) in [
        (1e-6, "uniformization tol=1e-6"),
        (1e-12, "uniformization tol=1e-12"),
    ] {
        let r = rows.iter().find(|r| r.scheme == name).expect("present");
        assert!(
            r.linf_error <= tol,
            "{name}: error {} above tolerance",
            r.linf_error
        );
        assert!(r.generator_applications < 60, "{name}: too many products");
    }
    println!(
        "\nE9 PASS: error orders as expected; uniformization hits its tolerance with <60 products."
    );
}
