//! E6a — The policy zoo under stale information.
//!
//! The paper's motivating comparison (§1–§2): on the same networks and
//! the same stale bulletin board, how do the candidate policies fare?
//!
//! * best response (not smooth) — oscillates on the §3.2 instance;
//! * smoothed best response (logit) with increasing greediness `c`;
//! * uniform + linear (Theorem 6);
//! * replicator = proportional + linear (Theorem 7).
//!
//! Reports final potential gap to the Frank–Wolfe ground truth,
//! monotonicity, orbit classification and bad-phase counts.

use serde::Serialize;
use wardrop_analysis::frank_wolfe::optimal_potential;
use wardrop_analysis::oscillation::{amplitude, detect_orbit, OrbitKind};
use wardrop_core::best_response::BestResponse;
use wardrop_core::engine::{run, Dynamics, SimulationConfig};
use wardrop_core::policy::{replicator, smoothed_best_response, uniform_linear};
use wardrop_core::theory::safe_update_period;
use wardrop_experiments::{banner, fmt_g, write_json, Table};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;

#[derive(Debug, Serialize)]
struct Row {
    network: String,
    policy: String,
    final_gap: f64,
    monotone: bool,
    orbit: String,
    trailing_amplitude: f64,
    bad_phases: usize,
}

fn orbit_name(kind: OrbitKind) -> String {
    match kind {
        OrbitKind::FixedPoint => "fixed point".into(),
        OrbitKind::Periodic(p) => format!("period-{p}"),
        OrbitKind::Aperiodic => "aperiodic".into(),
    }
}

fn main() {
    banner("E6a", "Policy comparison under stale information");

    let networks: Vec<(String, Instance, FlowVec)> = vec![
        {
            let inst = builders::two_link_oscillator(4.0);
            let f0 = FlowVec::from_values(&inst, vec![0.9, 0.1]).expect("feasible");
            ("oscillator(β=4)".to_string(), inst, f0)
        },
        {
            let inst = builders::braess();
            let f0 = FlowVec::uniform(&inst);
            ("braess".to_string(), inst, f0)
        },
        {
            let inst = builders::grid_network(3, 3, 42);
            let f0 = FlowVec::uniform(&inst);
            ("grid(3×3)".to_string(), inst, f0)
        },
    ];

    let mut rows = Vec::new();
    for (name, inst, f0) in &networks {
        println!("\nnetwork: {name}");
        let phi_star = optimal_potential(inst);
        let alpha = 1.0 / inst.latency_upper_bound();
        let t = safe_update_period(inst, alpha);
        let phases = 3000;
        let mut table = Table::new(vec![
            "policy",
            "final gap",
            "monotone",
            "orbit",
            "tail amplitude",
            "bad phases (δ=0.1ℓmax, ε=0.05)",
        ]);

        let delta = 0.1 * inst.latency_upper_bound();
        let dynamics: Vec<(String, Box<dyn Dynamics>)> = vec![
            ("best-response".into(), Box::new(BestResponse::new())),
            (
                "logit(c=1)+linear".into(),
                Box::new(smoothed_best_response(inst, 1.0)),
            ),
            (
                "logit(c=100)+linear".into(),
                Box::new(smoothed_best_response(inst, 100.0)),
            ),
            ("uniform+linear".into(), Box::new(uniform_linear(inst))),
            ("replicator".into(), Box::new(replicator(inst))),
        ];
        for (pname, dyn_) in &dynamics {
            let config = SimulationConfig::new(t, phases)
                .with_flows()
                .with_deltas(vec![delta]);
            let traj = run(inst, dyn_.as_ref(), f0, &config);
            let row = Row {
                network: name.clone(),
                policy: pname.clone(),
                final_gap: traj.phases.last().expect("ran").potential_end - phi_star,
                monotone: traj.monotonicity_violations(1e-10) == 0,
                orbit: orbit_name(detect_orbit(&traj, 16, 4, 1e-7)),
                trailing_amplitude: amplitude(&traj, 16),
                bad_phases: traj.bad_phase_count(0, 0.05),
            };
            table.row(vec![
                pname.clone(),
                fmt_g(row.final_gap),
                row.monotone.to_string(),
                row.orbit.clone(),
                fmt_g(row.trailing_amplitude),
                row.bad_phases.to_string(),
            ]);
            rows.push(row);
        }
        table.print();
    }
    write_json("e6_policy_comparison", &rows);

    // Headline checks: smooth policies always converge monotonically.
    // ("aperiodic" with a tiny trailing amplitude is a run still
    // creeping toward the fixed point below the orbit tolerance, not
    // an oscillation.)
    for r in rows.iter().filter(|r| r.policy != "best-response") {
        assert!(
            r.monotone,
            "{}/{}: smooth policy not monotone",
            r.network, r.policy
        );
        assert!(
            r.final_gap < 1e-2,
            "{}/{}: gap {}",
            r.network,
            r.policy,
            r.final_gap
        );
        assert!(
            !r.orbit.starts_with("period-"),
            "{}/{}: {}",
            r.network,
            r.policy,
            r.orbit
        );
        assert!(
            r.trailing_amplitude < 1e-2,
            "{}/{}: tail amplitude {}",
            r.network,
            r.policy,
            r.trailing_amplitude
        );
    }
    // … while best response oscillates on the §3.2 instance.
    let br = rows
        .iter()
        .find(|r| r.network.starts_with("oscillator") && r.policy == "best-response")
        .expect("row exists");
    assert_eq!(br.orbit, "period-2", "best response must oscillate");
    // The §3.2 orbit flips between 1/(e^{−T}+1) and its mirror image:
    // amplitude (1−e^{−T})/(1+e^{−T}).
    let t_osc = {
        let inst = &networks[0].1;
        safe_update_period(inst, 1.0 / inst.latency_upper_bound())
    };
    let analytic_amp = (1.0 - (-t_osc).exp()) / (1.0 + (-t_osc).exp());
    assert!(
        br.trailing_amplitude > 0.9 * analytic_amp,
        "amplitude {} vs analytic {analytic_amp}",
        br.trailing_amplitude
    );
    assert!(!br.monotone);
    println!("\nE6a PASS: smooth policies converge monotonically everywhere; best response oscillates on §3.2.");
}
