//! E4 — Theorem 6: uniform sampling + linear migration reaches
//! `(δ,ε)`-equilibria, with bad-phase count bounded by
//! `O(m/(εT) · (ℓmax/δ)²)`.
//!
//! Measures `B` = the number of update periods *not starting* at a
//! `(δ,ε)`-equilibrium on random parallel-link networks, sweeping one
//! parameter at a time:
//!
//! * `m` (number of links): the bound is linear in `m` — and unlike
//!   Theorem 7's policy, uniform sampling really does slow down with
//!   `m` (inflow to the good path is throttled by `σ = 1/m`);
//! * `T`: bad *time* is what the potential argument controls, so bad
//!   *phases* scale like `1/T` — the cleanest shape to verify;
//! * `δ`, `ε`: the bound says `1/δ²` and `1/ε`; the measured counts
//!   must stay below the bound and grow monotonically as the
//!   equilibrium notion tightens.
//!
//! Every measured count is asserted to be ≤ the Theorem 6 expression
//! (even with its hidden constant set to 1).

use serde::Serialize;
use wardrop_analysis::stats::loglog_slope;
use wardrop_core::engine::{Parallelism, Simulation, SimulationConfig};
use wardrop_core::ensemble::{map_runs, RunSpec};
use wardrop_core::migration::Linear;
use wardrop_core::policy::{uniform_linear, SmoothPolicy};
use wardrop_core::sampling::Uniform;
use wardrop_core::theory::{safe_update_period, theorem6_bound};
use wardrop_core::WorkerPool;
use wardrop_experiments::{banner, fmt_g, write_json, Table};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;

const SEEDS: [u64; 3] = [11, 22, 33];

#[derive(Debug, Serialize)]
struct Row {
    sweep: &'static str,
    m: usize,
    t_period: f64,
    delta: f64,
    eps: f64,
    measured_bad_phases: f64,
    theorem6_bound: f64,
}

/// Streams an in-flight simulation to completion, counting phases not
/// starting at a (δ,ε)-equilibrium. Panics if the run did not settle
/// (the tail must be good, otherwise the count would be truncated).
fn drive_bad_phases(
    sim: &mut Simulation<'_, SmoothPolicy<Uniform, Linear>>,
    eps: f64,
    phases: usize,
) -> usize {
    let tail_start = phases - phases / 10;
    let mut bad = 0usize;
    let mut tail_bad = 0usize;
    while let Some(r) = sim.step() {
        if r.unsatisfied[0] > eps {
            bad += 1;
            if r.index >= tail_start {
                tail_bad += 1;
            }
        }
    }
    assert_eq!(tail_bad, 0, "run did not settle; raise the phase budget");
    bad
}

/// The per-seed simulations of one sweep group, fanned across the
/// process-wide worker pool by the [ensemble runner](map_runs):
/// every lane keeps one reusable engine workspace (matrix-free rate
/// factors, evaluation buffers) rebound seed to seed and row to row.
struct SeedSims<'a> {
    insts: &'a [Instance],
    policies: &'a [SmoothPolicy<Uniform, Linear>],
    pool: Option<&'a WorkerPool>,
}

impl<'a> SeedSims<'a> {
    fn new(
        insts: &'a [Instance],
        policies: &'a [SmoothPolicy<Uniform, Linear>],
        pool: Option<&'a WorkerPool>,
    ) -> Self {
        SeedSims {
            insts,
            policies,
            pool,
        }
    }

    /// Mean bad-phase count over the seeds for one sweep row (one
    /// independent run per seed, fanned across the pool lanes).
    fn mean_bad(&mut self, t_scale: f64, delta: f64, eps: f64, phases: usize) -> (f64, f64, f64) {
        let specs: Vec<RunSpec<'a, SmoothPolicy<Uniform, Linear>>> = self
            .insts
            .iter()
            .zip(self.policies)
            .map(|(inst, policy)| {
                let alpha = 1.0 / inst.latency_upper_bound();
                let t = (safe_update_period(inst, alpha) * t_scale).min(1.0);
                let config = SimulationConfig::new(t, phases).with_deltas(vec![delta]);
                RunSpec::new(inst, policy, FlowVec::uniform(inst), config)
            })
            .collect();
        let counts = map_runs(self.pool, &specs, |_, sim| {
            drive_bad_phases(sim, eps, phases) as f64
        });
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        let last = self.insts.last().expect("at least one seed");
        let t_used = specs.last().expect("spec per seed").config.update_period;
        (mean, theorem6_bound(last, t_used, delta, eps), t_used)
    }
}

fn seed_instances(m: usize) -> Vec<Instance> {
    SEEDS
        .iter()
        .map(|s| builders::standard_random_links(m, *s))
        .collect()
}

fn main() {
    banner(
        "E4",
        "Theorem 6: uniform sampling, bad phases ≤ O(m/(εT)·(ℓmax/δ)²)",
    );
    // One process-wide pool for the whole sweep (WARDROP_THREADS
    // overrides; single-lane resolution means no pool at all). Runs
    // are bit-identical for every lane count.
    let pool = Parallelism::Auto.build_pool();
    let pool = pool.as_deref();
    let mut rows: Vec<Row> = Vec::new();

    // --- m sweep ---------------------------------------------------
    // The matrix-free phase rates make the per-phase cost O(m log m)
    // instead of Θ(m²), so the sweep now reaches m = 128 — deep enough
    // that the bound's predicted linear growth in m is visible on a
    // log–log fit rather than extrapolated from toy sizes.
    println!("\nsweep m (δ = 0.2, ε = 0.05, T = T*):");
    let mut t1 = Table::new(vec!["m", "T", "measured B", "Thm-6 bound", "B/bound"]);
    let (mut ms, mut bs) = (Vec::new(), Vec::new());
    for m in [2usize, 4, 8, 16, 32, 64, 128] {
        let insts = seed_instances(m);
        let policies: Vec<_> = insts.iter().map(uniform_linear).collect();
        let mut sims = SeedSims::new(&insts, &policies, pool);
        // Larger m needs a longer horizon to settle (B grows ~m).
        let phases = if m > 64 { 12_000 } else { 6_000 };
        let (b, bound, t) = sims.mean_bad(1.0, 0.2, 0.05, phases);
        t1.row(vec![
            m.to_string(),
            fmt_g(t),
            fmt_g(b),
            fmt_g(bound),
            fmt_g(b / bound),
        ]);
        rows.push(Row {
            sweep: "m",
            m,
            t_period: t,
            delta: 0.2,
            eps: 0.05,
            measured_bad_phases: b,
            theorem6_bound: bound,
        });
        if b > 0.0 {
            ms.push(m as f64);
            bs.push(b);
        }
    }
    t1.print();
    let m_slope = loglog_slope(&ms, &bs);
    println!("log–log slope of B vs m: {m_slope:.3}  (bound predicts ≤ 1; uniform sampling must grow with m)");

    // The T, δ and ε sweeps all run on the same m = 8 instances: each
    // pool lane's reusable simulation serves every row via `rebind`.
    let insts8 = seed_instances(8);
    let policies8: Vec<_> = insts8.iter().map(uniform_linear).collect();
    let mut sims8 = SeedSims::new(&insts8, &policies8, pool);

    // --- T sweep ----------------------------------------------------
    println!("\nsweep T (m = 8, δ = 0.2, ε = 0.05):");
    let mut t2 = Table::new(vec!["T/T*", "T", "measured B", "Thm-6 bound"]);
    let (mut ts, mut bts) = (Vec::new(), Vec::new());
    for t_scale in [1.0, 0.5, 0.25, 0.125] {
        let (b, bound, t) = sims8.mean_bad(t_scale, 0.2, 0.05, (6000.0 / t_scale) as usize);
        t2.row(vec![format!("{t_scale}"), fmt_g(t), fmt_g(b), fmt_g(bound)]);
        rows.push(Row {
            sweep: "T",
            m: 8,
            t_period: t,
            delta: 0.2,
            eps: 0.05,
            measured_bad_phases: b,
            theorem6_bound: bound,
        });
        ts.push(t);
        bts.push(b);
    }
    t2.print();
    let t_slope = loglog_slope(&ts, &bts);
    println!("log–log slope of B vs T: {t_slope:.3}  (theory: −1 — bad *time* is fixed)");

    // --- δ sweep ----------------------------------------------------
    println!("\nsweep δ (m = 8, ε = 0.05, T = T*):");
    let mut t3 = Table::new(vec!["δ", "measured B", "Thm-6 bound"]);
    let mut prev = 0.0_f64;
    let mut delta_ok = true;
    for delta in [0.4, 0.3, 0.2, 0.15, 0.1] {
        let (b, bound, t) = sims8.mean_bad(1.0, delta, 0.05, 12_000);
        t3.row(vec![format!("{delta}"), fmt_g(b), fmt_g(bound)]);
        rows.push(Row {
            sweep: "delta",
            m: 8,
            t_period: t,
            delta,
            eps: 0.05,
            measured_bad_phases: b,
            theorem6_bound: bound,
        });
        delta_ok &= b >= prev - 1e-9;
        prev = b;
    }
    t3.print();
    println!("B grows as δ shrinks (monotone): {delta_ok}");

    // --- ε sweep ----------------------------------------------------
    println!("\nsweep ε (m = 8, δ = 0.2, T = T*):");
    let mut t4 = Table::new(vec!["ε", "measured B", "Thm-6 bound"]);
    let mut prev = 0.0_f64;
    let mut eps_ok = true;
    for eps in [0.2, 0.1, 0.05, 0.025] {
        let (b, bound, t) = sims8.mean_bad(1.0, 0.2, eps, 12_000);
        t4.row(vec![format!("{eps}"), fmt_g(b), fmt_g(bound)]);
        rows.push(Row {
            sweep: "eps",
            m: 8,
            t_period: t,
            delta: 0.2,
            eps,
            measured_bad_phases: b,
            theorem6_bound: bound,
        });
        eps_ok &= b >= prev - 1e-9;
        prev = b;
    }
    t4.print();
    println!("B grows as ε shrinks (monotone): {eps_ok}");

    write_json("e4_thm6_uniform", &rows);

    for r in &rows {
        assert!(
            r.measured_bad_phases <= r.theorem6_bound,
            "measured {} exceeds the Theorem 6 bound {}",
            r.measured_bad_phases,
            r.theorem6_bound
        );
    }
    assert!(
        m_slope > 0.4,
        "uniform sampling must slow down with m (slope {m_slope})"
    );
    assert!(
        m_slope < 1.5,
        "m-dependence must stay within the bound's shape"
    );
    assert!(
        (-1.4..=-0.6).contains(&t_slope),
        "T-scaling must be ≈ 1/T (slope {t_slope})"
    );
    assert!(delta_ok && eps_ok, "counts must be monotone in δ and ε");
    println!("\nE4 PASS: all counts below the Theorem 6 bound; shapes (∝m, ∝1/T, monotone in δ and ε) hold.");
}
