//! E3 — Lemma 3 and Lemma 4, numerically.
//!
//! * **Lemma 3**: `Φ(f) − Φ(f̂) = Σ_e U_e + V(f̂, f)` for *any* pair of
//!   feasible flows. Checked on random flow pairs across instance
//!   families (residuals at machine precision).
//! * **Lemma 4**: for α-smooth policies with `T ≤ 1/(4DαΒ)`, every
//!   phase satisfies `ΔΦ ≤ ½ V ≤ 0`. Checked along full runs; the
//!   table reports the per-phase ratio `ΔΦ / V` (≥ ½ means at least
//!   half of the virtual gain is realised).
//! * **Definition 2 cross-check**: the empirical smoothness constant of
//!   each migration rule matches its declared α.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use wardrop_core::engine::{run, SimulationConfig};
use wardrop_core::migration::{empirical_smoothness, Linear, MigrationRule, ScaledLinear};
use wardrop_core::policy::{replicator, uniform_linear, ReroutingPolicy};
use wardrop_core::theory::safe_update_period;
use wardrop_experiments::{banner, fmt_g, write_json, Table};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;
use wardrop_net::potential::lemma3_residual;

#[derive(Debug, Serialize)]
struct Lemma3Row {
    network: String,
    pairs: usize,
    max_abs_residual: f64,
}

#[derive(Debug, Serialize)]
struct Lemma4Row {
    network: String,
    policy: String,
    phases: usize,
    violations: usize,
    min_ratio: f64,
    worst_slack: f64,
}

fn random_flow(inst: &Instance, rng: &mut StdRng) -> FlowVec {
    let mut values = vec![0.0; inst.num_paths()];
    for (i, c) in inst.commodities().iter().enumerate() {
        let range = inst.commodity_paths(i);
        let mut total = 0.0;
        for p in range.clone() {
            let w: f64 = rng.random_range(0.0..1.0);
            values[p] = w;
            total += w;
        }
        for p in range {
            values[p] *= c.demand / total;
        }
    }
    FlowVec::from_values(inst, values).expect("normalised by construction")
}

fn main() {
    banner(
        "E3",
        "Lemma 3 (potential decomposition) and Lemma 4 (ΔΦ ≤ ½V)",
    );

    let networks: Vec<(String, Instance)> = vec![
        ("pigou".into(), builders::pigou()),
        ("braess".into(), builders::braess()),
        ("oscillator(β=2)".into(), builders::two_link_oscillator(2.0)),
        (
            "parallel(8, random)".into(),
            builders::standard_random_links(8, 3),
        ),
        ("layered(2×3)".into(), builders::layered_network(2, 3, 3)),
        ("grid(3×3)".into(), builders::grid_network(3, 3, 3)),
    ];

    // Lemma 3 on random flow pairs.
    println!("\nLemma 3: Φ(f) − Φ(f̂) − ΣU_e − V(f̂,f) over random flow pairs");
    let mut l3_table = Table::new(vec!["network", "pairs", "max |residual|"]);
    let mut l3_rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(99);
    for (name, inst) in &networks {
        let pairs = 200;
        let mut worst = 0.0_f64;
        for _ in 0..pairs {
            let a = random_flow(inst, &mut rng);
            let b = random_flow(inst, &mut rng);
            worst = worst.max(lemma3_residual(inst, &a, &b).abs());
        }
        l3_table.row(vec![name.clone(), pairs.to_string(), fmt_g(worst)]);
        l3_rows.push(Lemma3Row {
            network: name.clone(),
            pairs,
            max_abs_residual: worst,
        });
    }
    l3_table.print();

    // Lemma 4 along actual runs at T = T*.
    println!("\nLemma 4: per-phase ΔΦ vs ½V at T = T* (α-smooth policies)");
    let mut l4_table = Table::new(vec![
        "network",
        "policy",
        "phases",
        "violations",
        "min ΔΦ/V",
        "worst ΔΦ−½V",
    ]);
    let mut l4_rows = Vec::new();
    for (name, inst) in &networks {
        let policies: Vec<Box<dyn ReroutingPolicy>> =
            vec![Box::new(uniform_linear(inst)), Box::new(replicator(inst))];
        for policy in policies {
            let alpha = policy.smoothness().expect("smooth policies");
            let t_star = safe_update_period(inst, alpha);
            let t = t_star.min(10.0); // constant-latency nets have T* = ∞
            let config = SimulationConfig::new(t, 400);
            let traj = run(inst, policy.as_ref(), &random_flow(inst, &mut rng), &config);
            // ΔΦ/V ratio over phases that actually moved.
            let min_ratio = traj
                .phases
                .iter()
                .filter(|p| p.virtual_gain < -1e-12)
                .map(|p| p.delta_phi() / p.virtual_gain)
                .fold(f64::INFINITY, f64::min);
            let row = Lemma4Row {
                network: name.clone(),
                policy: policy.name(),
                phases: traj.len(),
                violations: traj.lemma4_violations(1e-12),
                min_ratio,
                worst_slack: traj.lemma4_worst_slack(),
            };
            l4_table.row(vec![
                name.clone(),
                row.policy.clone(),
                row.phases.to_string(),
                row.violations.to_string(),
                fmt_g(row.min_ratio),
                fmt_g(row.worst_slack),
            ]);
            l4_rows.push(row);
        }
    }
    l4_table.print();

    // Definition 2 cross-check.
    println!("\nDefinition 2: declared vs empirical smoothness α");
    let mut d2 = Table::new(vec!["rule", "declared α", "empirical α"]);
    let rules: Vec<Box<dyn MigrationRule>> = vec![
        Box::new(Linear::new(2.0)),
        Box::new(Linear::new(7.5)),
        Box::new(ScaledLinear::new(0.25)),
        Box::new(ScaledLinear::new(3.0)),
    ];
    for rule in &rules {
        let declared = rule.smoothness().expect("smooth rules");
        let empirical = empirical_smoothness(rule.as_ref(), 1.0 / declared.max(0.2), 128);
        d2.row(vec![rule.name(), fmt_g(declared), fmt_g(empirical)]);
        assert!(
            empirical <= declared + 1e-9,
            "{} exceeds declared α",
            rule.name()
        );
    }
    d2.print();

    write_json("e3_lemma3", &l3_rows);
    write_json("e3_lemma4", &l4_rows);

    for r in &l3_rows {
        assert!(
            r.max_abs_residual < 1e-10,
            "{}: Lemma 3 residual too large",
            r.network
        );
    }
    for r in &l4_rows {
        assert_eq!(
            r.violations, 0,
            "{} / {}: Lemma 4 violated",
            r.network, r.policy
        );
        assert!(r.min_ratio >= 0.5 - 1e-9 || r.min_ratio == f64::INFINITY);
    }
    println!("\nE3 PASS: Lemma 3 exact; Lemma 4 holds with ΔΦ/V ≥ ½ on every phase.");
}
