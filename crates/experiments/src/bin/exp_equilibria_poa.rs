//! E7 — Wardrop background the paper builds on.
//!
//! * Wardrop equilibria minimise the Beckmann–McGuire–Winsten
//!   potential (the paper's Lyapunov function) — verified by checking
//!   the Frank–Wolfe minimiser against Definition 1 on every builder
//!   instance;
//! * Pigou and Braess have price of anarchy 4/3, the tight bound for
//!   affine latencies (Roughgarden–Tardos, cited as the frame for the
//!   whole line of work).

use serde::Serialize;
use wardrop_analysis::frank_wolfe::{minimise, FrankWolfeConfig, Objective};
use wardrop_analysis::poa::price_of_anarchy;
use wardrop_experiments::{banner, fmt_g, write_json, Table};
use wardrop_net::builders;
use wardrop_net::equilibrium::is_wardrop_equilibrium;
use wardrop_net::instance::Instance;

#[derive(Debug, Serialize)]
struct Row {
    network: String,
    equilibrium_potential: f64,
    fw_gap: f64,
    is_wardrop: bool,
    equilibrium_cost: f64,
    optimal_cost: f64,
    price_of_anarchy: f64,
}

fn main() {
    banner(
        "E7",
        "Wardrop equilibria minimise Φ; price of anarchy on the canonical instances",
    );

    let networks: Vec<(String, Instance)> = vec![
        ("pigou".into(), builders::pigou()),
        ("braess".into(), builders::braess()),
        ("oscillator(β=2)".into(), builders::two_link_oscillator(2.0)),
        ("two-class(8)".into(), builders::two_class_links(8, 0.75)),
        (
            "parallel(6, random)".into(),
            builders::standard_random_links(6, 5),
        ),
        ("layered(2×3)".into(), builders::layered_network(2, 3, 5)),
        ("grid(3×3)".into(), builders::grid_network(3, 3, 5)),
        (
            "mc-grid(3×3)".into(),
            builders::multi_commodity_grid(3, 3, 5),
        ),
    ];

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "network", "Φ*", "FW gap", "Wardrop?", "C(eq)", "C(opt)", "PoA",
    ]);
    for (name, inst) in &networks {
        let eq = minimise(inst, Objective::Potential, &FrankWolfeConfig::default());
        let report = price_of_anarchy(inst);
        let row = Row {
            network: name.clone(),
            equilibrium_potential: eq.value,
            fw_gap: eq.gap,
            is_wardrop: is_wardrop_equilibrium(inst, &eq.flow, 1e-3),
            equilibrium_cost: report.equilibrium_cost,
            optimal_cost: report.optimal_cost,
            price_of_anarchy: report.price_of_anarchy,
        };
        table.row(vec![
            name.clone(),
            fmt_g(row.equilibrium_potential),
            fmt_g(row.fw_gap),
            row.is_wardrop.to_string(),
            fmt_g(row.equilibrium_cost),
            fmt_g(row.optimal_cost),
            fmt_g(row.price_of_anarchy),
        ]);
        rows.push(row);
    }
    table.print();
    write_json("e7_equilibria_poa", &rows);

    for r in &rows {
        assert!(
            r.is_wardrop,
            "{}: Φ-minimiser is not a Wardrop equilibrium",
            r.network
        );
        assert!(r.price_of_anarchy >= 1.0 - 1e-6, "{}: PoA < 1", r.network);
        assert!(
            r.price_of_anarchy <= 4.0 / 3.0 + 1e-2,
            "{}: affine latencies must have PoA ≤ 4/3, got {}",
            r.network,
            r.price_of_anarchy
        );
    }
    let pigou = &rows[0];
    assert!(
        (pigou.price_of_anarchy - 4.0 / 3.0).abs() < 1e-3,
        "Pigou PoA must be 4/3"
    );
    let braess = &rows[1];
    assert!(
        (braess.price_of_anarchy - 4.0 / 3.0).abs() < 1e-2,
        "Braess PoA must be 4/3"
    );
    println!("\nE7 PASS: every Φ-minimiser is a Wardrop equilibrium; Pigou/Braess PoA = 4/3; affine PoA ≤ 4/3.");
}
