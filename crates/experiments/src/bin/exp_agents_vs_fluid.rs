//! E6b — The fluid limit is the right abstraction.
//!
//! Runs the finite-population discrete-event simulator (the *actual*
//! process of the model: `N` Poisson-clocked agents, bulletin board
//! every `T`) against the fluid-limit ODE for increasing `N`, and
//! verifies:
//!
//! * the L∞ distance between empirical and fluid phase-start flows
//!   shrinks like `O(1/√N)` (law of large numbers);
//! * the qualitative conclusions transfer: finite-agent smooth policies
//!   converge, finite-agent best response oscillates.

use serde::Serialize;
use wardrop_agents::sim::{run_agents, AgentPolicy, AgentSimConfig};
use wardrop_analysis::stats::loglog_slope;
use wardrop_core::engine::{run, SimulationConfig};
use wardrop_core::policy::replicator;
use wardrop_core::theory;
use wardrop_experiments::{banner, fmt_g, write_json, Table};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;

#[derive(Debug, Serialize)]
struct Row {
    num_agents: u64,
    mean_linf: f64,
    max_linf: f64,
}

fn main() {
    banner("E6b", "Finite agents converge to the fluid limit as N → ∞");

    let inst = builders::braess();
    let t_period = 0.25;
    let phases = 150;
    let f0 = FlowVec::uniform(&inst);

    let fluid = run(
        &inst,
        &replicator(&inst),
        &f0,
        &SimulationConfig::new(t_period, phases).with_flows(),
    );

    let mut rows = Vec::new();
    let mut table = Table::new(vec!["N", "mean ‖·‖∞", "max ‖·‖∞"]);
    let (mut ns, mut means) = (Vec::new(), Vec::new());
    for num_agents in [100u64, 400, 1_600, 6_400, 25_600, 102_400] {
        // Average over seeds to smooth the stochastic fluctuation.
        let seeds = [1u64, 2, 3];
        let mut mean_acc = 0.0;
        let mut max_acc = 0.0_f64;
        for seed in seeds {
            let config = AgentSimConfig::new(num_agents, t_period, phases, seed).with_flows();
            let traj = run_agents(&inst, &AgentPolicy::replicator(&inst), &f0, &config);
            let dists: Vec<f64> = traj
                .flows
                .iter()
                .zip(&fluid.flows)
                .map(|(a, b)| a.linf_distance(b))
                .collect();
            mean_acc += dists.iter().sum::<f64>() / dists.len() as f64;
            max_acc = max_acc.max(dists.iter().fold(0.0_f64, |a, b| a.max(*b)));
        }
        let row = Row {
            num_agents,
            mean_linf: mean_acc / seeds.len() as f64,
            max_linf: max_acc,
        };
        table.row(vec![
            num_agents.to_string(),
            fmt_g(row.mean_linf),
            fmt_g(row.max_linf),
        ]);
        ns.push(num_agents as f64);
        means.push(row.mean_linf);
        rows.push(row);
    }
    table.print();
    let slope = loglog_slope(&ns, &means);
    println!("log–log slope of mean distance vs N: {slope:.3}  (theory: −½)");

    // Qualitative transfer: finite-agent best response oscillates.
    let osc = builders::two_link_oscillator(4.0);
    let t = 0.5;
    let f1 = theory::oscillation::initial_flow(t);
    let f0_osc = FlowVec::from_values(&osc, vec![f1, 1.0 - f1]).expect("feasible");
    let config = AgentSimConfig::new(50_000, t, 40, 9).with_flows();
    let traj = run_agents(&osc, &AgentPolicy::BestResponse, &f0_osc, &config);
    let mut flips = 0;
    for w in traj.flows.windows(2) {
        if (w[0].values()[0] - 0.5) * (w[1].values()[0] - 0.5) < 0.0 {
            flips += 1;
        }
    }
    println!(
        "\nfinite-agent best response on §3.2: {flips}/{} phase transitions flip sides",
        traj.flows.len() - 1
    );

    write_json("e6_agents_vs_fluid", &rows);

    assert!(
        (-0.7..=-0.3).contains(&slope),
        "LLN scaling must be ≈ N^(−½), got {slope}"
    );
    assert!(
        rows.last().expect("rows").mean_linf < rows[0].mean_linf / 10.0,
        "distance must shrink by ≥ 10× over the N range"
    );
    assert!(
        flips as f64 > 0.9 * (traj.flows.len() - 1) as f64,
        "BR agents must keep flipping"
    );
    println!("\nE6b PASS: empirical flows → fluid limit at rate ≈ 1/√N; oscillation persists with finite N.");
}
