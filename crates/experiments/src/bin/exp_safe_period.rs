//! E2 — Corollary 5: α-smooth policies converge whenever
//! `T ≤ T* = 1/(4 D α β)`.
//!
//! Sweeps the update period as a multiple of `T*` on several networks
//! and α values (via the `ScaledLinear` migration rule) and reports
//!
//! * potential-monotonicity violations (the Lemma 4 guarantee holds for
//!   `T/T* ≤ 1` — expected 0 there),
//! * the Lemma 4 worst slack `max(ΔΦ − ½V)`,
//! * the final δ-unsatisfied volume (did the run converge at all?).
//!
//! The guarantee is one-sided: runs beyond `T*` *may* still converge
//! (the bound is worst-case), but within `T*` violations are
//! impossible.

use serde::Serialize;
use wardrop_core::engine::{run, SimulationConfig};
use wardrop_core::migration::ScaledLinear;
use wardrop_core::policy::SmoothPolicy;
use wardrop_core::sampling::Uniform;
use wardrop_core::theory::safe_update_period;
use wardrop_experiments::{banner, fmt_g, write_json, Table};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;

#[derive(Debug, Serialize)]
struct Row {
    network: String,
    alpha: f64,
    t_star: f64,
    t_over_t_star: f64,
    monotonicity_violations: usize,
    lemma4_violations: usize,
    lemma4_worst_slack: f64,
    final_unsatisfied: f64,
}

fn main() {
    banner(
        "E2",
        "Corollary 5: convergence within the safe update period T* = 1/(4DαΒ)",
    );

    let networks: Vec<(String, Instance)> = vec![
        ("braess".into(), builders::braess()),
        ("oscillator(β=4)".into(), builders::two_link_oscillator(4.0)),
        ("layered(2×3)".into(), builders::layered_network(2, 3, 17)),
        ("grid(3×3)".into(), builders::grid_network(3, 3, 17)),
    ];

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "network",
        "α",
        "T*",
        "T/T*",
        "Φ-increases",
        "L4 violations",
        "worst ΔΦ−½V",
        "final ε(δ)",
    ]);

    for (name, inst) in &networks {
        // Two α values: the canonical 1/ℓmax and a more aggressive one.
        let lmax = inst.latency_upper_bound();
        for alpha in [1.0 / lmax, 4.0 / lmax] {
            let t_star = safe_update_period(inst, alpha);
            let policy = SmoothPolicy::new(Uniform, ScaledLinear::new(alpha));
            // Convergence is measured as the volume of agents more than
            // δ = 5% of ℓmax above their commodity minimum (Definition 3):
            // max regret over used paths would never settle because bad
            // paths only drain exponentially and keep ε-sized residues.
            let delta = 0.05 * lmax;
            for factor in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
                let t = t_star * factor;
                let phases = ((400.0 / t).ceil() as usize).clamp(200, 40_000);
                let config = SimulationConfig::new(t, phases).with_deltas(vec![delta]);
                let traj = run(inst, &policy, &FlowVec::concentrated(inst), &config);
                let last = traj.phases.last().expect("phases ran");
                let row = Row {
                    network: name.clone(),
                    alpha,
                    t_star,
                    t_over_t_star: factor,
                    monotonicity_violations: traj.monotonicity_violations(1e-10),
                    lemma4_violations: traj.lemma4_violations(1e-10),
                    lemma4_worst_slack: traj.lemma4_worst_slack(),
                    final_unsatisfied: last.unsatisfied[0],
                };
                table.row(vec![
                    name.clone(),
                    fmt_g(alpha),
                    fmt_g(t_star),
                    format!("{factor}"),
                    format!("{}", row.monotonicity_violations),
                    format!("{}", row.lemma4_violations),
                    fmt_g(row.lemma4_worst_slack),
                    fmt_g(row.final_unsatisfied),
                ]);
                rows.push(row);
            }
        }
    }
    table.print();
    write_json("e2_safe_period", &rows);

    // The theorem's guarantee: zero violations for T ≤ T*.
    for r in rows.iter().filter(|r| r.t_over_t_star <= 1.0) {
        assert_eq!(
            r.monotonicity_violations, 0,
            "{}: potential increased within the safe period",
            r.network
        );
        assert_eq!(
            r.lemma4_violations, 0,
            "{}: ΔΦ > ½V within the safe period",
            r.network
        );
    }
    // And convergence: within T*, every run ends at an approximate
    // equilibrium (≤ 5% of agents more than 5%·ℓmax above the minimum).
    for r in rows.iter().filter(|r| r.t_over_t_star <= 1.0) {
        assert!(
            r.final_unsatisfied < 0.05,
            "{} (T/T* = {}): final unsatisfied volume {}",
            r.network,
            r.t_over_t_star,
            r.final_unsatisfied
        );
    }
    println!("\nE2 PASS: no monotonicity/Lemma-4 violations for T ≤ T*; all safe runs converged.");
}
