//! E1 — §3.2: best response oscillates under stale information.
//!
//! Reproduces, numerically, every quantity of the paper's two-link
//! construction (`ℓ₁ = ℓ₂ = max{0, β(x − ½)}`, demand 1):
//!
//! 1. the engine's orbit matches the closed form
//!    `f₁(0) = 1/(e^{−T}+1)`, period `2T`;
//! 2. the sustained deviation matches
//!    `X = β(1 − e^{−T})/(2e^{−T}+2)` across a (β, T) sweep;
//! 3. the critical period `T(ε) = ln((1+2ε/β)/(1−2ε/β))` separates
//!    deviations below/above ε;
//! 4. baseline: the α-smooth uniform+linear policy converges on the
//!    same instance for every tested T.

use serde::Serialize;
use wardrop_analysis::oscillation::{detect_orbit, OrbitKind};
use wardrop_core::best_response::BestResponse;
use wardrop_core::engine::{run, SimulationConfig};
use wardrop_core::policy::uniform_linear;
use wardrop_core::theory::oscillation;
use wardrop_experiments::{banner, fmt_g, write_json, Table};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;

#[derive(Debug, Serialize)]
struct Row {
    beta: f64,
    t_period: f64,
    predicted_deviation: f64,
    measured_deviation: f64,
    orbit_period: Option<usize>,
    engine_vs_closed_form_linf: f64,
    smooth_final_regret: f64,
}

fn main() {
    banner(
        "E1",
        "§3.2 best-response oscillation (two-link, ℓ = max{0, β(x−½)})",
    );

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "β",
        "T",
        "X (paper)",
        "X (measured)",
        "orbit",
        "‖engine−analytic‖∞",
        "smooth regret",
    ]);

    for beta in [0.5, 1.0, 2.0, 4.0] {
        for t_period in [0.05, 0.1, 0.25, 0.5, 1.0, 2.0] {
            let inst = builders::two_link_oscillator(beta);
            let f1 = oscillation::initial_flow(t_period);
            let f0 = FlowVec::from_values(&inst, vec![f1, 1.0 - f1]).expect("feasible");
            let phases = 64;
            let config = SimulationConfig::new(t_period, phases).with_flows();
            let traj = run(&inst, &BestResponse::new(), &f0, &config);

            // Engine vs closed form at every phase start.
            let mut worst = 0.0_f64;
            for (i, flow) in traj.flows.iter().enumerate() {
                let analytic = oscillation::orbit_f1(i as f64 * t_period, t_period);
                worst = worst.max((flow.values()[0] - analytic).abs());
            }

            // Measured deviation: max latency at phase starts.
            let measured_x = traj
                .flows
                .iter()
                .map(|f| f.max_used_latency(&inst, 1e-12))
                .fold(0.0_f64, f64::max);
            let predicted_x = oscillation::deviation(beta, t_period);

            let orbit = match detect_orbit(&traj, 16, 4, 1e-9) {
                OrbitKind::Periodic(p) => Some(p),
                OrbitKind::FixedPoint => Some(1),
                OrbitKind::Aperiodic => None,
            };

            // Smooth baseline from the same start.
            let smooth = run(
                &inst,
                &uniform_linear(&inst),
                &f0,
                &SimulationConfig::new(t_period, 2000),
            );
            let smooth_regret = smooth.phases.last().expect("phases").max_regret_start;

            table.row(vec![
                format!("{beta}"),
                format!("{t_period}"),
                fmt_g(predicted_x),
                fmt_g(measured_x),
                orbit.map_or("none".into(), |p| format!("{p}")),
                fmt_g(worst),
                fmt_g(smooth_regret),
            ]);
            rows.push(Row {
                beta,
                t_period,
                predicted_deviation: predicted_x,
                measured_deviation: measured_x,
                orbit_period: orbit,
                engine_vs_closed_form_linf: worst,
                smooth_final_regret: smooth_regret,
            });
        }
    }
    table.print();

    println!(
        "\ncritical periods T(ε) = ln((1+2ε/β)/(1−2ε/β)) — deviation crosses ε exactly there:"
    );
    let mut crit = Table::new(vec!["β", "ε", "T(ε)", "X at 0.9·T(ε)", "X at 1.1·T(ε)"]);
    for beta in [1.0, 2.0] {
        for eps in [0.05, 0.1, 0.2] {
            if let Some(t) = oscillation::max_period_for_deviation(beta, eps) {
                crit.row(vec![
                    format!("{beta}"),
                    format!("{eps}"),
                    fmt_g(t),
                    fmt_g(oscillation::deviation(beta, 0.9 * t)),
                    fmt_g(oscillation::deviation(beta, 1.1 * t)),
                ]);
            }
        }
    }
    crit.print();

    write_json("e1_oscillation", &rows);

    // Hard checks: the experiment fails loudly if the paper's claims
    // do not hold in the implementation.
    for r in &rows {
        assert!(
            r.engine_vs_closed_form_linf < 1e-9,
            "engine drifted from closed form"
        );
        assert_eq!(r.orbit_period, Some(2), "expected a period-2 orbit");
        assert!(
            (r.measured_deviation - r.predicted_deviation).abs() < 1e-9,
            "deviation mismatch"
        );
        assert!(
            r.smooth_final_regret < 1e-3,
            "smooth baseline failed to converge"
        );
    }
    println!("\nE1 PASS: orbit, deviation and critical periods all match §3.2.");
}
