//! E8 — beyond α-smoothness: the relative-slack dynamics of the
//! follow-up work (\[10\] in the paper; Fischer–Räcke–Vöcking, STOC'06).
//!
//! The paper's conclusions point out two shortcomings of slope-based
//! smoothness: natural latency classes have unbounded slope, and the
//! convergence times are pseudopolynomial in `ℓmax`. Reference \[10\]
//! fixes both with a policy whose migration probability is the
//! *relative* slack `(ℓ_P − ℓ_Q)/ℓ_P` — not α-smooth for any α, and
//! governed by the latencies' **elasticity** instead of their slope.
//!
//! This experiment demonstrates the trade exactly as the two papers
//! describe it:
//!
//! * on instances with bounded elasticity and positive latencies, the
//!   relative-slack dynamics converges — and needs *fewer* phases than
//!   the slope-limited replicator precisely when `ℓmax`/slope is large
//!   (steep polynomial and M/M/1 latencies);
//! * on the §3.2 oscillator (vanishing latency ⇒ infinite elasticity)
//!   it degenerates into best response and oscillates, confirming it
//!   is outside the Corollary 5 guarantee.

use serde::Serialize;
use wardrop_analysis::oscillation::amplitude;
use wardrop_core::engine::{run, SimulationConfig};
use wardrop_core::policy::{fast_relative_slack, replicator};
use wardrop_core::theory::safe_update_period;
use wardrop_experiments::{banner, fmt_g, write_json, Table};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;
use wardrop_net::latency::Latency;

#[derive(Debug, Serialize)]
struct Row {
    network: String,
    elasticity: f64,
    slope: f64,
    t_period: f64,
    replicator_phases_to_eq: Option<usize>,
    relative_slack_phases_to_eq: Option<usize>,
}

/// Phases until the run first starts at a weak (δ, ε)-equilibrium and
/// stays there for the rest of the horizon.
fn phases_to_weak_eq(traj: &wardrop_core::trajectory::Trajectory, eps: f64) -> Option<usize> {
    let mut last_bad = None;
    for p in &traj.phases {
        if p.weakly_unsatisfied[0] > eps {
            last_bad = Some(p.index);
        }
    }
    match last_bad {
        None => Some(0),
        Some(i) if i + 1 < traj.len() => Some(i + 1),
        _ => None, // still bad at the end of the horizon
    }
}

fn main() {
    banner(
        "E8",
        "Beyond smoothness: relative-slack dynamics (paper's reference [10])",
    );

    // Steepness-stressed instances: polynomial and M/M/1 latencies have
    // moderate elasticity but large slope/ℓmax, the regime where the
    // slope-based safe period forces the replicator to crawl.
    let networks: Vec<(String, Instance)> = vec![
        (
            "affine(4)".into(),
            builders::parallel_links(vec![
                Latency::Affine { a: 1.0, b: 1.0 },
                Latency::Affine { a: 0.5, b: 2.0 },
                Latency::Affine { a: 0.2, b: 3.0 },
                Latency::Affine { a: 1.5, b: 0.5 },
            ]),
        ),
        (
            "poly-deg6(3)".into(),
            builders::parallel_links(vec![
                Latency::Polynomial(vec![0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 8.0]),
                Latency::Polynomial(vec![0.2, 0.0, 0.0, 6.0]),
                Latency::Affine { a: 1.0, b: 1.0 },
            ]),
        ),
        (
            "mm1(3)".into(),
            builders::parallel_links(vec![
                Latency::Mm1 { capacity: 1.2 },
                Latency::Mm1 { capacity: 1.5 },
                Latency::Mm1 { capacity: 2.5 },
            ]),
        ),
    ];

    let (delta_frac, eps) = (0.02, 0.02);
    let horizon = 40_000;
    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "network",
        "elasticity",
        "slope β",
        "T",
        "replicator phases",
        "rel-slack phases",
    ]);
    for (name, inst) in &networks {
        let elasticity = inst.elasticity_bound_estimate(256);
        let slope = inst.slope_bound();
        // Both policies run with the *replicator's* safe period so the
        // comparison is per-phase-fair; the relative-slack policy has no
        // safe period of its own in the paper's framework.
        let alpha = 1.0 / inst.latency_upper_bound();
        let t = safe_update_period(inst, alpha).min(1.0);
        let delta = delta_frac * inst.latency_upper_bound();
        let config = SimulationConfig::new(t, horizon).with_deltas(vec![delta]);
        let f0 = FlowVec::uniform(inst);

        let rep = run(inst, &replicator(inst), &f0, &config);
        let fast = run(inst, &fast_relative_slack(), &f0, &config);
        let row = Row {
            network: name.clone(),
            elasticity,
            slope,
            t_period: t,
            replicator_phases_to_eq: phases_to_weak_eq(&rep, eps),
            relative_slack_phases_to_eq: phases_to_weak_eq(&fast, eps),
        };
        table.row(vec![
            name.clone(),
            fmt_g(elasticity),
            fmt_g(slope),
            fmt_g(t),
            row.replicator_phases_to_eq
                .map_or(">horizon".into(), |v| v.to_string()),
            row.relative_slack_phases_to_eq
                .map_or(">horizon".into(), |v| v.to_string()),
        ]);
        rows.push(row);
    }
    table.print();

    // The degenerate case: infinite elasticity (latency vanishes) —
    // relative slack becomes best response and oscillates.
    let osc = builders::two_link_oscillator(4.0);
    println!(
        "\n§3.2 oscillator elasticity estimate: {} (latency vanishes on half the range)",
        fmt_g(osc.elasticity_bound_estimate(256))
    );
    let f0 = FlowVec::from_values(&osc, vec![0.9, 0.1]).expect("feasible");
    let config = SimulationConfig::new(0.25, 800).with_flows();
    let fast = run(&osc, &fast_relative_slack(), &f0, &config);
    let amp = amplitude(&fast, 16);
    let increases = fast.monotonicity_violations(1e-10);
    println!(
        "relative-slack on the oscillator: tail amplitude {}, potential increases {}",
        fmt_g(amp),
        increases
    );

    write_json("e8_beyond_smoothness", &rows);

    for r in &rows {
        let fast = r
            .relative_slack_phases_to_eq
            .expect("relative slack must converge on bounded-elasticity instances");
        let rep = r
            .replicator_phases_to_eq
            .expect("replicator must converge within its guarantee");
        assert!(r.elasticity.is_finite());
        // On the steep (non-affine) instances the elasticity-based
        // dynamics must be strictly faster.
        if r.network != "affine(4)" {
            assert!(
                fast < rep,
                "{}: relative slack ({fast}) should beat the replicator ({rep})",
                r.network
            );
        }
    }
    assert!(amp > 0.05, "oscillator amplitude {amp}");
    assert!(increases > 0, "oscillator run must break monotonicity");
    println!("\nE8 PASS: elasticity-based dynamics faster on steep instances, but oscillates where elasticity is unbounded.");
}
