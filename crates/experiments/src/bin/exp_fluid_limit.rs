//! E12 — The fluid limit emerges from the open-system simulator.
//!
//! Sweeps the event-calendar DES (`wardrop_agents::open_system`) over
//! N ∈ {10⁴, 10⁵, 10⁶, 10⁷} agents in a closed configuration and
//! measures the maximum L∞ deviation of its phase-start flows from the
//! fluid engine's trajectory. The law of large numbers predicts a
//! ~1/√N shrink; the acceptance gate is monotone convergence across
//! the sweep (seed-averaged). The τ-leap length is scaled down with N
//! so the O((mδ)²) batching bias stays below the sampling noise it
//! would otherwise floor.
//!
//! The second part records an observable that *only exists*
//! asynchronously: the mover-weighted mean |experienced − posted| path
//! latency (`staleness_mean`). Agents acting mid-update see a board
//! that is up to `T` stale, so the staleness must grow with the update
//! period and vanish as `T → 0` — the synchronous reference simulator
//! cannot even express this quantity between its lockstep phases.
//!
//! Usage:
//!
//! ```text
//! exp_fluid_limit [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` caps the sweep at N = 10⁵ (CI-friendly); the full sweep
//! writes the committed artefact `E12_fluid_limit.json` (default
//! `--out` path) in addition to the `WARDROP_RESULTS_DIR` copy.

use serde::Serialize;
use wardrop_agents::open_system::{run_open_system, OpenSystemConfig};
use wardrop_agents::sim::AgentPolicy;
use wardrop_analysis::stats::loglog_slope;
use wardrop_core::engine::{run, SimulationConfig};
use wardrop_core::policy::replicator;
use wardrop_experiments::{banner, fmt_g, write_json, Table};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;

const T_PERIOD: f64 = 0.25;
const PHASES: usize = 40;
const SEEDS: [u64; 3] = [1, 2, 3];

#[derive(Debug, Serialize)]
struct SweepRow {
    num_agents: u64,
    /// τ-leap cap used at this N (shrinks with N so batching bias
    /// stays below sampling noise).
    max_leap: f64,
    /// Seed-averaged max-over-phases L∞ distance to the fluid flows.
    mean_max_linf: f64,
    /// Worst case over seeds.
    worst_max_linf: f64,
    /// 1/√N, the LLN prediction for the deviation scale.
    inv_sqrt_n: f64,
    events: u64,
    migrations: u64,
}

#[derive(Debug, Serialize)]
struct StalenessRow {
    update_period: f64,
    staleness_mean: f64,
}

#[derive(Debug, Serialize)]
struct Artefact {
    schema: &'static str,
    instance: &'static str,
    update_period: f64,
    phases: usize,
    mode: &'static str,
    loglog_slope: f64,
    sweep: Vec<SweepRow>,
    staleness: Vec<StalenessRow>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "E12_fluid_limit.json".to_string());

    banner(
        "E12",
        "The open-system DES converges to the fluid limit as N → ∞",
    );

    let inst = builders::grid_network(3, 3, 7);
    let f0 = FlowVec::uniform(&inst);
    let fluid = run(
        &inst,
        &replicator(&inst),
        &f0,
        &SimulationConfig::new(T_PERIOD, PHASES).with_flows(),
    );
    let policy = AgentPolicy::replicator(&inst);

    // (N, leap divisor): δ ∝ ~N^(−½) keeps the O((mδ)²) τ-leap bias
    // under the O(1/√N) sampling noise at every point of the sweep.
    let sweep_points: &[(u64, f64)] = if smoke {
        &[(10_000, 8.0), (100_000, 16.0)]
    } else {
        &[
            (10_000, 8.0),
            (100_000, 16.0),
            (1_000_000, 64.0),
            (10_000_000, 256.0),
        ]
    };

    let mut sweep = Vec::new();
    let mut table = Table::new(vec!["N", "max ‖·‖∞ (mean)", "worst seed", "1/√N"]);
    let (mut ns, mut means) = (Vec::new(), Vec::new());
    for &(num_agents, divisor) in sweep_points {
        let max_leap = T_PERIOD / divisor;
        let mut mean_acc = 0.0;
        let mut worst = 0.0_f64;
        let (mut events, mut migrations) = (0u64, 0u64);
        for seed in SEEDS {
            let config = OpenSystemConfig::new(num_agents, T_PERIOD, PHASES, seed)
                .with_max_leap(max_leap)
                .with_flows();
            let open = run_open_system(&inst, &policy, &f0, config).expect("closed sweep run");
            let max_linf = open
                .trajectory
                .flows
                .iter()
                .zip(&fluid.flows)
                .map(|(a, b)| a.linf_distance(b))
                .fold(0.0_f64, f64::max);
            mean_acc += max_linf;
            worst = worst.max(max_linf);
            events += open.stats.events;
            migrations += open.stats.migrations;
        }
        let row = SweepRow {
            num_agents,
            max_leap,
            mean_max_linf: mean_acc / SEEDS.len() as f64,
            worst_max_linf: worst,
            inv_sqrt_n: 1.0 / (num_agents as f64).sqrt(),
            events,
            migrations,
        };
        table.row(vec![
            num_agents.to_string(),
            fmt_g(row.mean_max_linf),
            fmt_g(row.worst_max_linf),
            fmt_g(row.inv_sqrt_n),
        ]);
        ns.push(num_agents as f64);
        means.push(row.mean_max_linf);
        sweep.push(row);
    }
    table.print();
    let slope = loglog_slope(&ns, &means);
    println!("log–log slope of mean deviation vs N: {slope:.3}  (theory: −½)");

    // The asynchronous-only observable: staleness grows with T. All
    // runs share N = 10⁵ and the same horizon-per-phase structure.
    let mut staleness = Vec::new();
    let mut stale_table = Table::new(vec!["T", "staleness (mover-weighted)"]);
    for t_period in [0.05, 0.25, 1.0] {
        let config =
            OpenSystemConfig::new(100_000, t_period, PHASES, 5).with_max_leap(t_period / 16.0);
        let open = run_open_system(&inst, &policy, &f0, config).expect("staleness run");
        stale_table.row(vec![fmt_g(t_period), fmt_g(open.stats.staleness_mean)]);
        staleness.push(StalenessRow {
            update_period: t_period,
            staleness_mean: open.stats.staleness_mean,
        });
    }
    stale_table.print();

    let artefact = Artefact {
        schema: "wardrop-experiments/e12/v1",
        instance: "grid_3x3",
        update_period: T_PERIOD,
        phases: PHASES,
        mode: if smoke { "smoke" } else { "full" },
        loglog_slope: slope,
        sweep,
        staleness,
    };
    write_json("e12_fluid_limit", &artefact);
    let json = serde_json::to_string_pretty(&artefact).expect("serialise artefact");
    std::fs::write(&out_path, json + "\n").expect("write artefact");
    println!("wrote {out_path}");

    // Acceptance: monotone fluid-limit convergence across the sweep.
    for pair in artefact.sweep.windows(2) {
        assert!(
            pair[1].mean_max_linf < pair[0].mean_max_linf,
            "deviation must shrink monotonically: N={} gives {} vs N={} gives {}",
            pair[0].num_agents,
            pair[0].mean_max_linf,
            pair[1].num_agents,
            pair[1].mean_max_linf,
        );
    }
    assert!(
        (-0.8..=-0.2).contains(&slope),
        "LLN scaling must be ≈ N^(−½), got {slope}"
    );
    // Staleness is an increasing function of the update period, and
    // strictly positive whenever the board can age at all.
    for pair in artefact.staleness.windows(2) {
        assert!(
            pair[0].staleness_mean > 0.0 && pair[1].staleness_mean > pair[0].staleness_mean,
            "staleness must grow with T: T={} gives {} vs T={} gives {}",
            pair[0].update_period,
            pair[0].staleness_mean,
            pair[1].update_period,
            pair[1].staleness_mean,
        );
    }
    println!(
        "\nE12 PASS: open-system flows → fluid limit at rate ≈ 1/√N (slope {slope:.2}); \
         board staleness is real and grows with T."
    );
}
