//! `wardrop-lab` — the registry-driven non-stationary scenario runner.
//!
//! Runs named scenarios (demand surges, link failures, flash crowds,
//! rolling degradations, flaky/dark bulletin boards) end-to-end through
//! the epoch-aware fluid engine at the worst-case safe period
//! `T = min_k T*_k`, and reports per-epoch recovery times, potential
//! gaps and tracking regret against certified per-epoch Frank–Wolfe
//! optima.
//!
//! Usage:
//!
//! ```text
//! wardrop-lab [--smoke] [--list] [--faults <plan>] [NAME…]
//! ```
//!
//! * `--list` prints the registry and exits;
//! * `--smoke` shortens every epoch (CI-friendly, seconds);
//! * `--faults <plan>` attaches a [`FaultPlan`] to every selected
//!   scenario — `<plan>` is either a path to a JSON file or inline
//!   JSON (e.g. `'{"seed":1,"drop_probability":0.3}'`). User-supplied
//!   plans may legitimately prevent recovery, so the final
//!   all-recovered assertion is reported instead of enforced;
//! * with no names, every registered scenario runs.
//!
//! With `WARDROP_RESULTS_DIR` set, per-epoch rows are written as
//! `lab_<name>.json` plus a combined `lab_summary.json`; scenarios
//! with a fault plan additionally write `lab_fault_<name>.json` with
//! the fault counters and the governor's intervention log.

use serde::Serialize;
use wardrop_analysis::tracking::TrackingReport;
use wardrop_core::engine::Parallelism;
use wardrop_core::fault::FaultPlan;
use wardrop_core::trajectory::Trajectory;
use wardrop_experiments::scenarios::{self, EpochRow, RunAudit};
use wardrop_experiments::{banner, fmt_g, write_json, Table};

#[derive(Debug, Serialize)]
struct ScenarioSummary {
    scenario: String,
    events: usize,
    epochs: usize,
    update_period: f64,
    min_safe_period: f64,
    all_recovered: bool,
    total_tracking_regret: f64,
    faulted: bool,
}

#[derive(Debug, Serialize)]
struct FaultArtefact {
    scenario: String,
    plan: FaultPlan,
    audit: RunAudit,
}

/// Parses the `--faults` operand: a path to a JSON file, or inline
/// JSON. The plan is validated before use.
fn parse_fault_plan(spec: &str) -> FaultPlan {
    let text = if spec.trim_start().starts_with('{') {
        spec.to_string()
    } else {
        std::fs::read_to_string(spec).unwrap_or_else(|e| {
            eprintln!("cannot read fault plan '{spec}': {e}");
            std::process::exit(2);
        })
    };
    let plan: FaultPlan = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse fault plan '{spec}': {e}");
        std::process::exit(2);
    });
    plan.validate().unwrap_or_else(|e| {
        eprintln!("invalid fault plan '{spec}': {e}");
        std::process::exit(2);
    });
    plan
}

/// Prints and summarises one precomputed scenario run (the runs
/// themselves are fanned across the worker pool in `main`; reporting
/// stays serial so tables never interleave).
fn report_one(
    s: &scenarios::NamedScenario,
    traj: &Trajectory,
    report: &TrackingReport,
    audit: &RunAudit,
) -> (ScenarioSummary, Vec<EpochRow>) {
    println!(
        "\n── {} — {} ({} phases, T = {})",
        s.name,
        s.description,
        s.num_phases,
        fmt_g(s.update_period)
    );
    for e in s.scenario.events() {
        let what: Vec<String> = e.actions.iter().map(|a| a.describe()).collect();
        println!(
            "   phase {:>6}: {} [{}]",
            e.at_phase,
            e.label,
            what.join(", ")
        );
    }
    let rows = s.rows(report);
    let mut table = Table::new(vec![
        "epoch",
        "phases",
        "T*",
        "Φ*",
        "recovery",
        "gap@shock",
        "gap@end",
        "regret",
    ]);
    for r in &rows {
        table.row(vec![
            r.epoch.to_string(),
            format!("{}..{}", r.start_phase, r.end_phase),
            fmt_g(r.safe_period),
            fmt_g(r.optimum_potential),
            r.recovery_phases
                .map_or("never".to_string(), |p| p.to_string()),
            fmt_g(r.initial_gap),
            fmt_g(r.final_gap),
            fmt_g(r.tracking_regret),
        ]);
    }
    table.print();
    println!(
        "   {} epochs, all recovered: {}, total tracking regret: {}",
        report.epochs.len(),
        report.all_recovered,
        fmt_g(report.total_tracking_regret)
    );
    if let Some(stats) = &audit.fault_stats {
        println!(
            "   faults: {} posts, {} dropped, {} degraded, {} edges skipped, {} stale rows",
            stats.posts,
            stats.dropped,
            stats.degraded,
            stats.edges_skipped,
            stats.stale_commodity_rows
        );
    }
    if let Some(log) = &audit.guard_log {
        println!(
            "   governor: {} violations, {} restores, min throttle {}",
            log.violations(),
            log.restores(),
            log.min_scale().map_or("1".to_string(), fmt_g)
        );
    }
    assert!(
        traj.final_flow.is_feasible(
            s.scenario
                .epoch_instances(&s.instance)
                .expect("registry scenarios apply cleanly")
                .last()
                .expect("at least the base epoch"),
            1e-6
        ),
        "{}: final flow infeasible for the final epoch instance",
        s.name
    );
    let summary = ScenarioSummary {
        scenario: s.name.to_string(),
        events: s.scenario.events().len(),
        epochs: report.epochs.len(),
        update_period: s.update_period,
        min_safe_period: report.min_safe_period,
        all_recovered: report.all_recovered,
        total_tracking_regret: report.total_tracking_regret,
        faulted: s.faults.is_some(),
    };
    write_json(&format!("lab_{}", s.name), &rows);
    if let Some(plan) = &s.faults {
        write_json(
            &format!("lab_fault_{}", s.name),
            &FaultArtefact {
                scenario: s.name.to_string(),
                plan: plan.clone(),
                audit: audit.clone(),
            },
        );
    }
    (summary, rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let list = args.iter().any(|a| a == "--list");
    let fault_override = args.iter().position(|a| a == "--faults").map(|i| {
        parse_fault_plan(args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--faults needs a plan (JSON file path or inline JSON)");
            std::process::exit(2);
        }))
    });
    let mut skip_next = false;
    let names: Vec<&String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--faults" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .collect();

    banner(
        "wardrop-lab",
        "non-stationary scenario runner (tracking a moving equilibrium)",
    );

    if list {
        let mut table = Table::new(vec!["name", "description"]);
        for s in scenarios::all(smoke) {
            table.row(vec![s.name.to_string(), s.description.to_string()]);
        }
        table.print();
        return;
    }

    let mut selected: Vec<scenarios::NamedScenario> = if names.is_empty() {
        scenarios::all(smoke)
    } else {
        names
            .iter()
            .map(|n| {
                scenarios::by_name(n, smoke).unwrap_or_else(|| {
                    eprintln!("unknown scenario '{n}'; try --list");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    if let Some(plan) = &fault_override {
        for s in &mut selected {
            s.faults = Some(plan.clone());
        }
    }

    // Fan the independent scenario runs across the worker pool (the
    // ensemble pattern: each is a whole engine run); report serially
    // in registry order so the tables never interleave. Results are
    // identical for every lane count.
    let pool = Parallelism::Auto.build_pool();
    let computed: Vec<(Trajectory, TrackingReport, RunAudit)> = match pool.as_deref() {
        Some(p) if p.lanes() > 1 && selected.len() > 1 => {
            p.map_collect(selected.len(), || (), |(), i| selected[i].run_audited())
        }
        _ => selected.iter().map(|s| s.run_audited()).collect(),
    };

    let mut summaries = Vec::new();
    for (s, (traj, report, audit)) in selected.iter().zip(computed) {
        let (summary, _) = report_one(s, &traj, &report, &audit);
        summaries.push(summary);
    }
    write_json("lab_summary", &summaries);

    let failed: Vec<&str> = summaries
        .iter()
        .filter(|s| !s.all_recovered)
        .map(|s| s.scenario.as_str())
        .collect();
    if fault_override.is_some() {
        // A user-supplied plan may legitimately starve recovery: report
        // the outcome instead of asserting it.
        println!(
            "\nwardrop-lab (custom faults): {} scenario(s), unrecovered: {:?}",
            summaries.len(),
            failed
        );
        return;
    }
    assert!(
        failed.is_empty(),
        "scenarios with unrecovered epochs at T ≤ T*: {failed:?}"
    );
    println!(
        "\nwardrop-lab PASS: {} scenario(s), every epoch re-entered a (δ,ε)-equilibrium at T ≤ min T*.",
        summaries.len()
    );
}
