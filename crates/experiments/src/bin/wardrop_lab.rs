//! `wardrop-lab` — the registry-driven non-stationary scenario runner.
//!
//! Runs named scenarios (demand surges, link failures, flash crowds,
//! rolling degradations) end-to-end through the epoch-aware fluid
//! engine at the worst-case safe period `T = min_k T*_k`, and reports
//! per-epoch recovery times, potential gaps and tracking regret
//! against certified per-epoch Frank–Wolfe optima.
//!
//! Usage:
//!
//! ```text
//! wardrop-lab [--smoke] [--list] [NAME…]
//! ```
//!
//! * `--list` prints the registry and exits;
//! * `--smoke` shortens every epoch (CI-friendly, seconds);
//! * with no names, every registered scenario runs.
//!
//! With `WARDROP_RESULTS_DIR` set, per-epoch rows are written as
//! `lab_<name>.json` plus a combined `lab_summary.json`.

use serde::Serialize;
use wardrop_analysis::tracking::TrackingReport;
use wardrop_core::engine::Parallelism;
use wardrop_core::trajectory::Trajectory;
use wardrop_experiments::scenarios::{self, EpochRow};
use wardrop_experiments::{banner, fmt_g, write_json, Table};

#[derive(Debug, Serialize)]
struct ScenarioSummary {
    scenario: String,
    events: usize,
    epochs: usize,
    update_period: f64,
    min_safe_period: f64,
    all_recovered: bool,
    total_tracking_regret: f64,
}

/// Prints and summarises one precomputed scenario run (the runs
/// themselves are fanned across the worker pool in `main`; reporting
/// stays serial so tables never interleave).
fn report_one(
    s: &scenarios::NamedScenario,
    traj: &Trajectory,
    report: &TrackingReport,
) -> (ScenarioSummary, Vec<EpochRow>) {
    println!(
        "\n── {} — {} ({} phases, T = {})",
        s.name,
        s.description,
        s.num_phases,
        fmt_g(s.update_period)
    );
    for e in s.scenario.events() {
        let what: Vec<String> = e.actions.iter().map(|a| a.describe()).collect();
        println!(
            "   phase {:>6}: {} [{}]",
            e.at_phase,
            e.label,
            what.join(", ")
        );
    }
    let rows = s.rows(report);
    let mut table = Table::new(vec![
        "epoch",
        "phases",
        "T*",
        "Φ*",
        "recovery",
        "gap@shock",
        "gap@end",
        "regret",
    ]);
    for r in &rows {
        table.row(vec![
            r.epoch.to_string(),
            format!("{}..{}", r.start_phase, r.end_phase),
            fmt_g(r.safe_period),
            fmt_g(r.optimum_potential),
            r.recovery_phases
                .map_or("never".to_string(), |p| p.to_string()),
            fmt_g(r.initial_gap),
            fmt_g(r.final_gap),
            fmt_g(r.tracking_regret),
        ]);
    }
    table.print();
    println!(
        "   {} epochs, all recovered: {}, total tracking regret: {}",
        report.epochs.len(),
        report.all_recovered,
        fmt_g(report.total_tracking_regret)
    );
    assert!(
        traj.final_flow.is_feasible(
            s.scenario
                .epoch_instances(&s.instance)
                .expect("registry scenarios apply cleanly")
                .last()
                .expect("at least the base epoch"),
            1e-6
        ),
        "{}: final flow infeasible for the final epoch instance",
        s.name
    );
    let summary = ScenarioSummary {
        scenario: s.name.to_string(),
        events: s.scenario.events().len(),
        epochs: report.epochs.len(),
        update_period: s.update_period,
        min_safe_period: report.min_safe_period,
        all_recovered: report.all_recovered,
        total_tracking_regret: report.total_tracking_regret,
    };
    write_json(&format!("lab_{}", s.name), &rows);
    (summary, rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let list = args.iter().any(|a| a == "--list");
    let names: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    banner(
        "wardrop-lab",
        "non-stationary scenario runner (tracking a moving equilibrium)",
    );

    if list {
        let mut table = Table::new(vec!["name", "description"]);
        for s in scenarios::all(smoke) {
            table.row(vec![s.name.to_string(), s.description.to_string()]);
        }
        table.print();
        return;
    }

    let selected: Vec<scenarios::NamedScenario> = if names.is_empty() {
        scenarios::all(smoke)
    } else {
        names
            .iter()
            .map(|n| {
                scenarios::by_name(n, smoke).unwrap_or_else(|| {
                    eprintln!("unknown scenario '{n}'; try --list");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    // Fan the independent scenario runs across the worker pool (the
    // ensemble pattern: each is a whole engine run); report serially
    // in registry order so the tables never interleave. Results are
    // identical for every lane count.
    let pool = Parallelism::Auto.build_pool();
    let computed: Vec<(Trajectory, TrackingReport)> = match pool.as_deref() {
        Some(p) if p.lanes() > 1 && selected.len() > 1 => {
            p.map_collect(selected.len(), || (), |(), i| selected[i].run())
        }
        _ => selected.iter().map(|s| s.run()).collect(),
    };

    let mut summaries = Vec::new();
    for (s, (traj, report)) in selected.iter().zip(computed) {
        let (summary, _) = report_one(s, &traj, &report);
        summaries.push(summary);
    }
    write_json("lab_summary", &summaries);

    let failed: Vec<&str> = summaries
        .iter()
        .filter(|s| !s.all_recovered)
        .map(|s| s.scenario.as_str())
        .collect();
    assert!(
        failed.is_empty(),
        "scenarios with unrecovered epochs at T ≤ T*: {failed:?}"
    );
    println!(
        "\nwardrop-lab PASS: {} scenario(s), every epoch re-entered a (δ,ε)-equilibrium at T ≤ min T*.",
        summaries.len()
    );
}
