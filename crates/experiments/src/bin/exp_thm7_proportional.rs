//! E5 — Theorem 7: proportional sampling (slowed-down replicator) has
//! bad-phase count `O(1/(εT) · (ℓmax/δ)²)` — **independent of |P|**.
//!
//! The headline comparison of the paper's §5: uniform sampling pays a
//! factor `m = max_i |P_i|` (Theorem 6) which proportional sampling
//! removes, at the price of the weaker equilibrium notion (latencies
//! compared to the commodity *average* instead of the minimum).
//!
//! The experiment measures weak-(δ,ε) bad phases for the replicator
//! and, side by side, strict bad phases for uniform sampling on the
//! same instances, then fits the `m`-scaling of both. Expected shape:
//! the replicator's count is flat in `m`; uniform's grows.

use serde::Serialize;
use wardrop_analysis::stats::loglog_slope;
use wardrop_core::engine::{Parallelism, Simulation, SimulationConfig};
use wardrop_core::ensemble::{map_runs, RunSpec};
use wardrop_core::migration::Linear;
use wardrop_core::policy::{replicator, uniform_linear, SmoothPolicy};
use wardrop_core::sampling::{Proportional, Uniform};
use wardrop_core::theory::{safe_update_period, theorem7_bound};
use wardrop_core::{Dynamics, WorkerPool};
use wardrop_experiments::{banner, fmt_g, write_json, Table};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;

const SEEDS: [u64; 3] = [11, 22, 33];

#[derive(Debug, Serialize)]
struct Row {
    sweep: &'static str,
    m: usize,
    t_period: f64,
    delta: f64,
    eps: f64,
    replicator_weak_bad: f64,
    uniform_strict_bad: f64,
    theorem7_bound: f64,
}

/// Streams a simulation to completion, counting phases not starting at
/// a weak (δ,ε)-equilibrium; asserts the tail settled.
fn drive_weak_bad<D: Dynamics + ?Sized>(
    sim: &mut Simulation<'_, D>,
    eps: f64,
    phases: usize,
) -> usize {
    let tail_start = phases - phases / 10;
    let mut bad = 0usize;
    let mut tail_bad = 0usize;
    while let Some(r) = sim.step() {
        if r.weakly_unsatisfied[0] > eps {
            bad += 1;
            if r.index >= tail_start {
                tail_bad += 1;
            }
        }
    }
    assert_eq!(tail_bad, 0, "replicator run did not settle");
    bad
}

/// Streams a simulation to completion, counting strict (δ,ε) bad
/// phases (no tail requirement — uniform is the slow baseline here).
fn drive_strict_bad<D: Dynamics + ?Sized>(sim: &mut Simulation<'_, D>, eps: f64) -> usize {
    let mut bad = 0usize;
    while let Some(r) = sim.step() {
        if r.unsatisfied[0] > eps {
            bad += 1;
        }
    }
    bad
}

fn seed_instances(m: usize) -> Vec<Instance> {
    SEEDS
        .iter()
        .map(|s| builders::standard_random_links(m, *s))
        .collect()
}

fn row_period(inst: &Instance, t_scale: f64) -> f64 {
    let alpha = 1.0 / inst.latency_upper_bound();
    (safe_update_period(inst, alpha) * t_scale).min(1.0)
}

fn measure_on(inst: &Instance, t_scale: f64, delta: f64, eps: f64, phases: usize) -> Row {
    let t = row_period(inst, t_scale);
    let config = SimulationConfig::new(t, phases).with_deltas(vec![delta]);
    let rep = replicator(inst);
    let uni = uniform_linear(inst);
    let f0 = FlowVec::uniform(inst);
    Row {
        sweep: "",
        m: inst.num_paths(),
        t_period: t,
        delta,
        eps,
        replicator_weak_bad: drive_weak_bad(
            &mut Simulation::new(inst, &rep, &f0, &config),
            eps,
            phases,
        ) as f64,
        uniform_strict_bad: drive_strict_bad(&mut Simulation::new(inst, &uni, &f0, &config), eps)
            as f64,
        theorem7_bound: theorem7_bound(inst, t, delta, eps),
    }
}

/// The per-seed runs of one sweep group (one replicator and one
/// uniform run per seed), fanned across the process-wide worker pool
/// by the [ensemble runner](map_runs) with per-lane reusable engine
/// workspaces.
struct SeedSims<'a> {
    insts: &'a [Instance],
    rep_policies: &'a [SmoothPolicy<Proportional, Linear>],
    uni_policies: &'a [SmoothPolicy<Uniform, Linear>],
    pool: Option<&'a WorkerPool>,
}

impl<'a> SeedSims<'a> {
    fn new(
        insts: &'a [Instance],
        rep_policies: &'a [SmoothPolicy<Proportional, Linear>],
        uni_policies: &'a [SmoothPolicy<Uniform, Linear>],
        pool: Option<&'a WorkerPool>,
    ) -> Self {
        SeedSims {
            insts,
            rep_policies,
            uni_policies,
            pool,
        }
    }

    fn specs<S, M>(
        &self,
        policies: &'a [SmoothPolicy<S, M>],
        t_scale: f64,
        delta: f64,
        phases: usize,
    ) -> Vec<RunSpec<'a, SmoothPolicy<S, M>>>
    where
        S: wardrop_core::sampling::SamplingRule + Clone,
        M: wardrop_core::migration::MigrationRule + Clone,
    {
        self.insts
            .iter()
            .zip(policies)
            .map(|(inst, policy)| {
                let t = row_period(inst, t_scale);
                let config = SimulationConfig::new(t, phases).with_deltas(vec![delta]);
                RunSpec::new(inst, policy, FlowVec::uniform(inst), config)
            })
            .collect()
    }

    fn measure(&mut self, t_scale: f64, delta: f64, eps: f64, phases: usize) -> Row {
        let rep_specs = self.specs(self.rep_policies, t_scale, delta, phases);
        let rep_counts = map_runs(self.pool, &rep_specs, |_, sim| {
            drive_weak_bad(sim, eps, phases) as f64
        });
        let uni_specs = self.specs(self.uni_policies, t_scale, delta, phases);
        let uni_counts = map_runs(self.pool, &uni_specs, |_, sim| {
            drive_strict_bad(sim, eps) as f64
        });
        let last = self.insts.last().expect("at least one seed");
        let t = row_period(last, t_scale);
        Row {
            sweep: "",
            m: last.num_paths(),
            t_period: t,
            delta,
            eps,
            replicator_weak_bad: rep_counts.iter().sum::<f64>() / SEEDS.len() as f64,
            uniform_strict_bad: uni_counts.iter().sum::<f64>() / SEEDS.len() as f64,
            theorem7_bound: theorem7_bound(last, t, delta, eps),
        }
    }
}

fn main() {
    banner("E5", "Theorem 7: proportional sampling is |P|-independent");
    // One process-wide pool for the whole sweep (WARDROP_THREADS
    // overrides); runs are bit-identical for every lane count.
    let pool = Parallelism::Auto.build_pool();
    let pool = pool.as_deref();
    let mut rows: Vec<Row> = Vec::new();

    // m sweep on the funnel family (1 cheap link ℓ = x, m−1 expensive
    // links ℓ = 0.75 + x): all demand must funnel into one good path.
    // Uniform sampling throttles that path's inflow by σ = 1/m, so its
    // strict-(δ,ε) bad-phase count pays Theorem 6's m-factor. The
    // replicator is measured against its own guarantee (weak-(δ,ε),
    // Theorem 7) whose bound — and measured count — is m-independent:
    // agents compare against the commodity *average*, which the bulk of
    // the population already attains.
    println!("\nsweep m, funnel links (δ = 0.2, ε = 0.05, T = T*):");
    let mut t1 = Table::new(vec![
        "m",
        "T",
        "replicator weak-B",
        "Thm-7 bound",
        "uniform strict-B (Thm 6)",
    ]);
    let (mut ms, mut rep_b, mut uni_b) = (Vec::new(), Vec::new(), Vec::new());
    for m in [4usize, 8, 16, 32, 64] {
        let inst = builders::funnel_links(m, 0.75);
        let mut r = measure_on(&inst, 1.0, 0.2, 0.05, 800 * m);
        r.sweep = "m";
        t1.row(vec![
            m.to_string(),
            fmt_g(r.t_period),
            fmt_g(r.replicator_weak_bad),
            fmt_g(r.theorem7_bound),
            fmt_g(r.uniform_strict_bad),
        ]);
        ms.push(m as f64);
        rep_b.push(r.replicator_weak_bad);
        uni_b.push(r.uniform_strict_bad);
        rows.push(r);
    }
    t1.print();
    // Replicator counts sit at ~0, so a log–log fit is meaningless for
    // them; flatness is asserted as a constant bound across m instead.
    let rep_max = rep_b.iter().fold(0.0_f64, |a, b| a.max(*b));
    let uni_slope = loglog_slope(&ms, &uni_b);
    let _ = &ms;
    println!("replicator weak-B stays ≤ {rep_max} for every m (theory: m-independent);");
    println!(
        "log–log m-slope of uniform strict-B: {uni_slope:.3} (theory: 1 — the Theorem 6 m-factor)"
    );

    // Secondary: the random-link family (bound compliance only — the
    // gap distribution changes with m there, so flatness is confounded).
    println!("\nsweep m, random links (bound compliance):");
    let mut t1b = Table::new(vec!["m", "replicator weak-B", "Thm-7 bound"]);
    for m in [2usize, 4, 8, 16, 32] {
        let insts = seed_instances(m);
        let rep_p: Vec<_> = insts.iter().map(replicator).collect();
        let uni_p: Vec<_> = insts.iter().map(uniform_linear).collect();
        let mut sims = SeedSims::new(&insts, &rep_p, &uni_p, pool);
        let mut r = sims.measure(1.0, 0.2, 0.05, 6000);
        r.sweep = "m-random";
        t1b.row(vec![
            m.to_string(),
            fmt_g(r.replicator_weak_bad),
            fmt_g(r.theorem7_bound),
        ]);
        rows.push(r);
    }
    t1b.print();

    // The T and δ sweeps share the m = 8 instances; each pool lane's
    // reusable simulation serves every row via `rebind`.
    let insts8 = seed_instances(8);
    let rep8: Vec<_> = insts8.iter().map(replicator).collect();
    let uni8: Vec<_> = insts8.iter().map(uniform_linear).collect();
    let mut sims8 = SeedSims::new(&insts8, &rep8, &uni8, pool);

    println!("\nsweep T (m = 8, δ = 0.2, ε = 0.05):");
    let mut t2 = Table::new(vec!["T/T*", "T", "replicator weak-B", "Thm-7 bound"]);
    let (mut ts, mut bts) = (Vec::new(), Vec::new());
    for t_scale in [1.0, 0.5, 0.25, 0.125] {
        let mut r = sims8.measure(t_scale, 0.2, 0.05, (6000.0 / t_scale) as usize);
        r.sweep = "T";
        t2.row(vec![
            format!("{t_scale}"),
            fmt_g(r.t_period),
            fmt_g(r.replicator_weak_bad),
            fmt_g(r.theorem7_bound),
        ]);
        ts.push(r.t_period);
        bts.push(r.replicator_weak_bad);
        rows.push(r);
    }
    t2.print();
    let t_slope = loglog_slope(&ts, &bts);
    println!("log–log slope of weak-B vs T: {t_slope:.3}  (theory: −1)");

    println!("\nsweep δ (m = 8, ε = 0.05, T = T*):");
    let mut t3 = Table::new(vec!["δ", "replicator weak-B", "Thm-7 bound"]);
    let mut prev = 0.0_f64;
    let mut delta_ok = true;
    for delta in [0.4, 0.3, 0.2, 0.15, 0.1] {
        let mut r = sims8.measure(1.0, delta, 0.05, 12_000);
        r.sweep = "delta";
        t3.row(vec![
            format!("{delta}"),
            fmt_g(r.replicator_weak_bad),
            fmt_g(r.theorem7_bound),
        ]);
        delta_ok &= r.replicator_weak_bad >= prev - 1e-9;
        prev = r.replicator_weak_bad;
        rows.push(r);
    }
    t3.print();
    println!("weak-B grows as δ shrinks (monotone): {delta_ok}");

    write_json("e5_thm7_proportional", &rows);

    for r in &rows {
        assert!(
            r.replicator_weak_bad <= r.theorem7_bound,
            "measured {} exceeds the Theorem 7 bound {}",
            r.replicator_weak_bad,
            r.theorem7_bound
        );
    }
    assert!(
        rep_max <= 10.0,
        "replicator weak-B must stay m-independent and small (max {rep_max})"
    );
    assert!(
        uni_slope > 0.6,
        "uniform strict-B must pay the Theorem 6 m-factor (slope {uni_slope})"
    );
    assert!(
        uni_b.last().expect("sweep ran") / rep_max.max(1.0) > 20.0,
        "the m-factor contrast must separate the policies at large m"
    );
    assert!(
        (-1.4..=-0.6).contains(&t_slope),
        "T-scaling must be ≈ 1/T (slope {t_slope})"
    );
    assert!(delta_ok);
    println!("\nE5 PASS: weak bad phases below the Theorem 7 bound, flat in m; uniform pays the m-factor.");
}
