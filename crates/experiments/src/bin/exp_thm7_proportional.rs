//! E5 — Theorem 7: proportional sampling (slowed-down replicator) has
//! bad-phase count `O(1/(εT) · (ℓmax/δ)²)` — **independent of |P|**.
//!
//! The headline comparison of the paper's §5: uniform sampling pays a
//! factor `m = max_i |P_i|` (Theorem 6) which proportional sampling
//! removes, at the price of the weaker equilibrium notion (latencies
//! compared to the commodity *average* instead of the minimum).
//!
//! The experiment measures weak-(δ,ε) bad phases for the replicator
//! and, side by side, strict bad phases for uniform sampling on the
//! same instances, then fits the `m`-scaling of both. Expected shape:
//! the replicator's count is flat in `m`; uniform's grows.

use serde::Serialize;
use wardrop_analysis::stats::loglog_slope;
use wardrop_core::engine::{run, SimulationConfig};
use wardrop_core::policy::{replicator, uniform_linear};
use wardrop_core::theory::{safe_update_period, theorem7_bound};
use wardrop_experiments::{banner, fmt_g, write_json, Table};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;

const SEEDS: [u64; 3] = [11, 22, 33];

/// One cheap link `ℓ(x) = x` plus `m − 1` expensive links
/// `ℓ(x) = gap + x`.
fn funnel_links(m: usize, gap: f64) -> Instance {
    let mut latencies = vec![wardrop_net::Latency::Affine { a: 0.0, b: 1.0 }];
    latencies.extend(std::iter::repeat_n(
        wardrop_net::Latency::Affine { a: gap, b: 1.0 },
        m - 1,
    ));
    builders::parallel_links(latencies)
}

#[derive(Debug, Serialize)]
struct Row {
    sweep: &'static str,
    m: usize,
    t_period: f64,
    delta: f64,
    eps: f64,
    replicator_weak_bad: f64,
    uniform_strict_bad: f64,
    theorem7_bound: f64,
}

fn weak_bad_replicator(inst: &Instance, t: f64, delta: f64, eps: f64, phases: usize) -> usize {
    let policy = replicator(inst);
    let config = SimulationConfig::new(t, phases).with_deltas(vec![delta]);
    let traj = run(inst, &policy, &FlowVec::uniform(inst), &config);
    let bad = traj.weak_bad_phase_count(0, eps);
    let tail_bad = traj
        .phases
        .iter()
        .rev()
        .take(phases / 10)
        .filter(|p| p.weakly_unsatisfied[0] > eps)
        .count();
    assert_eq!(tail_bad, 0, "replicator run did not settle");
    bad
}

fn strict_bad_uniform(inst: &Instance, t: f64, delta: f64, eps: f64, phases: usize) -> usize {
    let policy = uniform_linear(inst);
    let config = SimulationConfig::new(t, phases).with_deltas(vec![delta]);
    let traj = run(inst, &policy, &FlowVec::uniform(inst), &config);
    traj.bad_phase_count(0, eps)
}

fn measure_on(inst: &Instance, t_scale: f64, delta: f64, eps: f64, phases: usize) -> Row {
    let alpha = 1.0 / inst.latency_upper_bound();
    let t = (safe_update_period(inst, alpha) * t_scale).min(1.0);
    Row {
        sweep: "",
        m: inst.num_paths(),
        t_period: t,
        delta,
        eps,
        replicator_weak_bad: weak_bad_replicator(inst, t, delta, eps, phases) as f64,
        uniform_strict_bad: strict_bad_uniform(inst, t, delta, eps, phases) as f64,
        theorem7_bound: theorem7_bound(inst, t, delta, eps),
    }
}

fn measure(m: usize, t_scale: f64, delta: f64, eps: f64, phases: usize) -> Row {
    let mut acc: Option<Row> = None;
    for seed in SEEDS {
        let inst = builders::random_parallel_links(m, 1.0, 0.2, 2.0, seed);
        let r = measure_on(&inst, t_scale, delta, eps, phases);
        match &mut acc {
            None => acc = Some(r),
            Some(a) => {
                a.replicator_weak_bad += r.replicator_weak_bad;
                a.uniform_strict_bad += r.uniform_strict_bad;
                a.t_period = r.t_period;
                a.theorem7_bound = r.theorem7_bound;
            }
        }
    }
    let mut r = acc.expect("at least one seed");
    r.replicator_weak_bad /= SEEDS.len() as f64;
    r.uniform_strict_bad /= SEEDS.len() as f64;
    r
}

fn main() {
    banner("E5", "Theorem 7: proportional sampling is |P|-independent");
    let mut rows: Vec<Row> = Vec::new();

    // m sweep on the funnel family (1 cheap link ℓ = x, m−1 expensive
    // links ℓ = 0.75 + x): all demand must funnel into one good path.
    // Uniform sampling throttles that path's inflow by σ = 1/m, so its
    // strict-(δ,ε) bad-phase count pays Theorem 6's m-factor. The
    // replicator is measured against its own guarantee (weak-(δ,ε),
    // Theorem 7) whose bound — and measured count — is m-independent:
    // agents compare against the commodity *average*, which the bulk of
    // the population already attains.
    println!("\nsweep m, funnel links (δ = 0.2, ε = 0.05, T = T*):");
    let mut t1 = Table::new(vec![
        "m",
        "T",
        "replicator weak-B",
        "Thm-7 bound",
        "uniform strict-B (Thm 6)",
    ]);
    let (mut ms, mut rep_b, mut uni_b) = (Vec::new(), Vec::new(), Vec::new());
    for m in [4usize, 8, 16, 32, 64] {
        let inst = funnel_links(m, 0.75);
        let mut r = measure_on(&inst, 1.0, 0.2, 0.05, 800 * m);
        r.sweep = "m";
        t1.row(vec![
            m.to_string(),
            fmt_g(r.t_period),
            fmt_g(r.replicator_weak_bad),
            fmt_g(r.theorem7_bound),
            fmt_g(r.uniform_strict_bad),
        ]);
        ms.push(m as f64);
        rep_b.push(r.replicator_weak_bad);
        uni_b.push(r.uniform_strict_bad);
        rows.push(r);
    }
    t1.print();
    // Replicator counts sit at ~0, so a log–log fit is meaningless for
    // them; flatness is asserted as a constant bound across m instead.
    let rep_max = rep_b.iter().fold(0.0_f64, |a, b| a.max(*b));
    let uni_slope = loglog_slope(&ms, &uni_b);
    let _ = &ms;
    println!("replicator weak-B stays ≤ {rep_max} for every m (theory: m-independent);");
    println!(
        "log–log m-slope of uniform strict-B: {uni_slope:.3} (theory: 1 — the Theorem 6 m-factor)"
    );

    // Secondary: the random-link family (bound compliance only — the
    // gap distribution changes with m there, so flatness is confounded).
    println!("\nsweep m, random links (bound compliance):");
    let mut t1b = Table::new(vec!["m", "replicator weak-B", "Thm-7 bound"]);
    for m in [2usize, 4, 8, 16, 32] {
        let mut r = measure(m, 1.0, 0.2, 0.05, 6000);
        r.sweep = "m-random";
        t1b.row(vec![
            m.to_string(),
            fmt_g(r.replicator_weak_bad),
            fmt_g(r.theorem7_bound),
        ]);
        rows.push(r);
    }
    t1b.print();

    println!("\nsweep T (m = 8, δ = 0.2, ε = 0.05):");
    let mut t2 = Table::new(vec!["T/T*", "T", "replicator weak-B", "Thm-7 bound"]);
    let (mut ts, mut bts) = (Vec::new(), Vec::new());
    for t_scale in [1.0, 0.5, 0.25, 0.125] {
        let mut r = measure(8, t_scale, 0.2, 0.05, (6000.0 / t_scale) as usize);
        r.sweep = "T";
        t2.row(vec![
            format!("{t_scale}"),
            fmt_g(r.t_period),
            fmt_g(r.replicator_weak_bad),
            fmt_g(r.theorem7_bound),
        ]);
        ts.push(r.t_period);
        bts.push(r.replicator_weak_bad);
        rows.push(r);
    }
    t2.print();
    let t_slope = loglog_slope(&ts, &bts);
    println!("log–log slope of weak-B vs T: {t_slope:.3}  (theory: −1)");

    println!("\nsweep δ (m = 8, ε = 0.05, T = T*):");
    let mut t3 = Table::new(vec!["δ", "replicator weak-B", "Thm-7 bound"]);
    let mut prev = 0.0_f64;
    let mut delta_ok = true;
    for delta in [0.4, 0.3, 0.2, 0.15, 0.1] {
        let mut r = measure(8, 1.0, delta, 0.05, 12_000);
        r.sweep = "delta";
        t3.row(vec![
            format!("{delta}"),
            fmt_g(r.replicator_weak_bad),
            fmt_g(r.theorem7_bound),
        ]);
        delta_ok &= r.replicator_weak_bad >= prev - 1e-9;
        prev = r.replicator_weak_bad;
        rows.push(r);
    }
    t3.print();
    println!("weak-B grows as δ shrinks (monotone): {delta_ok}");

    write_json("e5_thm7_proportional", &rows);

    for r in &rows {
        assert!(
            r.replicator_weak_bad <= r.theorem7_bound,
            "measured {} exceeds the Theorem 7 bound {}",
            r.replicator_weak_bad,
            r.theorem7_bound
        );
    }
    assert!(
        rep_max <= 10.0,
        "replicator weak-B must stay m-independent and small (max {rep_max})"
    );
    assert!(
        uni_slope > 0.6,
        "uniform strict-B must pay the Theorem 6 m-factor (slope {uni_slope})"
    );
    assert!(
        uni_b.last().expect("sweep ran") / rep_max.max(1.0) > 20.0,
        "the m-factor contrast must separate the policies at large m"
    );
    assert!(
        (-1.4..=-0.6).contains(&t_slope),
        "T-scaling must be ≈ 1/T (slope {t_slope})"
    );
    assert!(delta_ok);
    println!("\nE5 PASS: weak bad phases below the Theorem 7 bound, flat in m; uniform pays the m-factor.");
}
