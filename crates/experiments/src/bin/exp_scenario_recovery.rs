//! E10 — post-shock recovery is guaranteed iff the update period
//! respects the safe bound `T ≤ T* = 1/(4 D α B)`.
//!
//! Two halves:
//!
//! 1. **Guarantee.** Every registry scenario (`rush-hour`,
//!    `link-failure`, `flash-crowd`, `rolling-degradation`) runs under
//!    the α-smooth uniform+linear policy at the worst-case safe period
//!    `T = min_k T*_k` across its epochs. Corollary 5 then applies
//!    within every epoch, so after *every* shock the run re-enters a
//!    `(δ, ε)`-equilibrium — asserted per epoch.
//! 2. **Violation.** The same kind of shock sequence on the §3.2
//!    two-link oscillator under best response. Best response is not
//!    α-smooth for any α (`T* = 0`), so every positive update period
//!    violates the bound — and indeed the population keeps
//!    oscillating: the post-shock epochs *never* recover.
//!
//! Both halves emit per-epoch recovery-time and tracking-regret tables
//! (JSON via `WARDROP_RESULTS_DIR`).

use serde::Serialize;
use wardrop_analysis::tracking::tracking_report;
use wardrop_core::engine::{run_scenario, SimulationConfig};
use wardrop_core::theory::oscillation;
use wardrop_core::BestResponse;
use wardrop_experiments::scenarios::{self, EpochRow};
use wardrop_experiments::{banner, fmt_g, write_json, Table};
use wardrop_net::builders;
use wardrop_net::scenario::{Event, EventAction, Scenario};
use wardrop_net::{EdgeId, FlowVec, Latency};

fn epoch_table(rows: &[EpochRow]) -> Table {
    let mut table = Table::new(vec![
        "scenario", "epoch", "phases", "T", "T*", "recovery", "regret",
    ]);
    for r in rows {
        table.row(vec![
            r.scenario.clone(),
            r.epoch.to_string(),
            format!("{}..{}", r.start_phase, r.end_phase),
            fmt_g(r.update_period),
            fmt_g(r.safe_period),
            r.recovery_phases
                .map_or("never".to_string(), |p| p.to_string()),
            fmt_g(r.tracking_regret),
        ]);
    }
    table
}

#[derive(Debug, Serialize)]
struct ViolationRow {
    epoch: usize,
    start_phase: usize,
    end_phase: usize,
    update_period: f64,
    safe_period: f64,
    recovery_phases: Option<usize>,
    final_unsatisfied_volume: f64,
    tracking_regret: f64,
}

fn main() {
    banner(
        "E10",
        "non-stationary scenarios: recovery after every shock iff T ≤ T* = 1/(4DαB)",
    );

    // ----- Part 1: T ≤ T* — every epoch of every scenario recovers.
    println!("\n[1] α-smooth policy at the worst-case safe period (T = min_k T*_k):\n");
    let mut guarantee_rows: Vec<EpochRow> = Vec::new();
    for s in scenarios::all(true) {
        let (_, report) = s.run();
        assert!(
            report.all_recovered,
            "{}: an epoch failed to recover at T ≤ T* — epochs: {:#?}",
            s.name, report.epochs
        );
        assert!(
            s.update_period <= report.min_safe_period + 1e-12,
            "{}: registry period above min T*",
            s.name
        );
        guarantee_rows.extend(s.rows(&report));
    }
    epoch_table(&guarantee_rows).print();
    let recovered = guarantee_rows
        .iter()
        .filter(|r| r.recovery_phases.is_some())
        .count();
    println!(
        "\n{recovered}/{} epochs recovered (every shock, every scenario).",
        guarantee_rows.len()
    );
    write_json("e10_recovery_guarantee", &guarantee_rows);

    // ----- Part 2: T > T* — best response (T* = 0) never recovers.
    println!("\n[2] best response on the §3.2 oscillator (α unbounded ⇒ T* = 0 < T):\n");
    let beta = 4.0;
    let t = 0.5;
    let inst = builders::two_link_oscillator(beta);
    let link0 = EdgeId::from_index(0);
    let l = 80usize;
    // Shock: link 0 turns into a loaded affine link (moves the
    // equilibrium off the plateau), then is restored.
    let scenario = Scenario::new("oscillator-shock")
        .with_event(Event::at(
            l,
            "link 0 degrades",
            EventAction::SetLatency {
                edge: link0,
                latency: Latency::Affine { a: 0.1, b: 1.0 },
            },
        ))
        .with_event(Event::at(
            2 * l,
            "link 0 restored",
            EventAction::SetLatency {
                edge: link0,
                latency: Latency::oscillator(beta),
            },
        ));
    let delta = 0.25;
    let eps = 0.1;
    let config = SimulationConfig::new(t, 3 * l).with_deltas(vec![delta]);
    let f1 = oscillation::initial_flow(t);
    let f0 = FlowVec::from_values(&inst, vec![f1, 1.0 - f1]).expect("oscillating start");
    let traj = run_scenario(&inst, &BestResponse::new(), &f0, &config, &scenario)
        .expect("oscillator scenario applies cleanly");
    // Best response is not α-smooth for any α; α → ∞ gives T* = 0,
    // which is what the report's safe-period column shows.
    let report = tracking_report(&inst, &scenario, &traj, f64::MAX, eps)
        .expect("replay of a clean scenario cannot fail");

    let mut violation_rows = Vec::new();
    let mut table = Table::new(vec![
        "epoch",
        "phases",
        "T",
        "T*",
        "recovery",
        "final ε(δ)",
        "regret",
    ]);
    for (e, (_, range)) in report.epochs.iter().zip(traj.epoch_ranges()) {
        let final_unsat = traj.phases[range.end - 1].unsatisfied[0];
        table.row(vec![
            e.epoch.to_string(),
            format!("{}..{}", e.start_phase, e.end_phase),
            fmt_g(t),
            fmt_g(e.safe_period),
            e.recovery_phases
                .map_or("never".to_string(), |p| p.to_string()),
            fmt_g(final_unsat),
            fmt_g(e.tracking_regret),
        ]);
        violation_rows.push(ViolationRow {
            epoch: e.epoch,
            start_phase: e.start_phase,
            end_phase: e.end_phase,
            update_period: t,
            safe_period: e.safe_period,
            recovery_phases: e.recovery_phases,
            final_unsatisfied_volume: final_unsat,
            tracking_regret: e.tracking_regret,
        });
    }
    table.print();
    write_json("e10_recovery_violation", &violation_rows);

    assert!(
        report.epochs.iter().all(|e| e.safe_period == 0.0),
        "best response must report T* = 0"
    );
    let unrecovered = report
        .epochs
        .iter()
        .filter(|e| e.recovery_phases.is_none())
        .count();
    assert!(
        unrecovered > 0,
        "best response above T* must leave at least one epoch unrecovered"
    );
    assert!(
        report
            .epochs
            .last()
            .expect("oscillator run has epochs")
            .recovery_phases
            .is_none(),
        "the post-shock oscillation must persist to the end of the run"
    );
    println!(
        "\n{unrecovered}/{} epochs never recovered under best response (T = {t} > T* = 0).",
        report.epochs.len()
    );

    println!("\nE10 PASS: every shock recovered at T ≤ T*; best response (T* = 0) sustained oscillation.");
}
