//! Adversarial fault-plan search: simulated annealing over the fault
//! knobs, scored by how badly a plan hurts the dynamics.
//!
//! The fault layer ([`wardrop_core::fault`]) spans a small continuous
//! search space — drop probability, per-edge refresh fraction, noise
//! amplitude, one outage window — and the damage a plan does (recovery
//! time, worst potential excursion) is a cheap black-box function of
//! it: one engine run. [`anneal_fault_plan`] runs a seeded Metropolis
//! walk over that space, *maximising* a caller-supplied score, and
//! returns the worst plan found plus the accepted-move trace.
//!
//! The searcher is deterministic per seed (SplitMix64 end to end) and
//! never proposes an invalid plan: every move is clamped into the
//! configured knob caps, so the [`FaultPlan`] builders cannot fail.

use serde::Serialize;
use wardrop_core::fault::FaultPlan;
use wardrop_net::rng::SplitMix64;

/// Search-space caps and annealing schedule.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AdversaryConfig {
    /// Metropolis iterations (score evaluations beyond the seed plan).
    pub iterations: usize,
    /// RNG seed of the walk (also seeds the proposed plans).
    pub seed: u64,
    /// Initial temperature of the acceptance rule.
    pub initial_temperature: f64,
    /// Per-iteration multiplicative cooling factor in `(0, 1]`.
    pub cooling: f64,
    /// Cap on the proposed drop probability, `≤ 1`.
    pub max_drop: f64,
    /// Cap on the proposed noise amplitude, `< 1`.
    pub max_noise: f64,
    /// Floor on the proposed per-edge refresh fraction, `> 0`.
    pub min_refresh: f64,
    /// Phase horizon: outage windows are placed inside `[1, horizon)`.
    pub horizon: usize,
    /// Cap on the length of the proposed outage window.
    pub max_outage_len: usize,
}

impl AdversaryConfig {
    /// A small default search: 60 iterations, gentle cooling, caps
    /// that keep plans survivable (`drop ≤ 0.5`, `noise ≤ 0.2`,
    /// `refresh ≥ 0.3`).
    pub fn new(horizon: usize, seed: u64) -> Self {
        AdversaryConfig {
            iterations: 60,
            seed,
            initial_temperature: 1.0,
            cooling: 0.95,
            max_drop: 0.5,
            max_noise: 0.2,
            min_refresh: 0.3,
            horizon,
            max_outage_len: horizon / 4,
        }
    }
}

/// The mutable knobs of the walk (a plan, unpacked).
#[derive(Debug, Clone, Copy)]
struct Knobs {
    drop: f64,
    noise: f64,
    refresh: f64,
    outage_start: usize,
    outage_len: usize,
}

impl Knobs {
    fn benign() -> Self {
        Knobs {
            drop: 0.0,
            noise: 0.0,
            refresh: 1.0,
            outage_start: 1,
            outage_len: 0,
        }
    }

    /// Builds the (always valid, by clamping) plan of this knob vector.
    fn plan(&self, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed)
            .with_drop_probability(self.drop)
            .expect("clamped drop probability")
            .with_noise(self.noise)
            .expect("clamped noise amplitude")
            .with_partial_updates(self.refresh)
            .expect("clamped refresh fraction");
        if self.outage_len > 0 {
            plan = plan
                .with_outage(self.outage_start, self.outage_start + self.outage_len)
                .expect("non-empty outage window");
        }
        plan
    }
}

/// One accepted or rejected step of the walk (for artefacts and
/// convergence plots).
#[derive(Debug, Clone, Serialize)]
pub struct AnnealStep {
    /// Iteration index.
    pub iteration: usize,
    /// Score of the proposed plan.
    pub score: f64,
    /// Whether the proposal was accepted.
    pub accepted: bool,
    /// Best score seen so far (after this step).
    pub best_score: f64,
}

/// Outcome of the annealing search.
#[derive(Debug, Clone, Serialize)]
pub struct AnnealResult {
    /// The worst (highest-scoring) plan found.
    pub best_plan: FaultPlan,
    /// Its score.
    pub best_score: f64,
    /// Score of the benign all-zero starting plan.
    pub baseline_score: f64,
    /// Total score evaluations (iterations + baseline).
    pub evaluations: usize,
    /// Accepted moves.
    pub accepted: usize,
    /// Per-iteration trace.
    pub trace: Vec<AnnealStep>,
}

/// Clamp helper for proposed continuous knobs.
fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    x.max(lo).min(hi)
}

/// Runs the Metropolis walk, **maximising** `score` (e.g. phases to
/// recovery, worst potential excursion). `score` is called once per
/// iteration plus once for the benign baseline plan; it may be
/// expensive (a full engine run) — budget `config.iterations`
/// accordingly.
///
/// # Panics
///
/// Panics if the config is degenerate (zero horizon, caps outside the
/// builders' ranges).
pub fn anneal_fault_plan(
    config: &AdversaryConfig,
    mut score: impl FnMut(&FaultPlan) -> f64,
) -> AnnealResult {
    assert!(config.horizon >= 2, "need a phase horizon of at least 2");
    assert!(
        config.cooling > 0.0 && config.cooling <= 1.0,
        "cooling must be in (0, 1]"
    );
    let mut rng = SplitMix64::new(config.seed);
    let mut current = Knobs::benign();
    let mut current_score = score(&current.plan(config.seed));
    let baseline_score = current_score;
    let mut best = current;
    let mut best_score = current_score;
    let mut temperature = config.initial_temperature;
    let mut accepted = 0usize;
    let mut trace = Vec::with_capacity(config.iterations);

    for iteration in 0..config.iterations {
        // Propose: perturb one knob, clamped into the caps.
        let mut proposal = current;
        match rng.next_u64() % 5 {
            0 => {
                proposal.drop = clamp(
                    proposal.drop + (rng.next_unit() - 0.5) * 0.2,
                    0.0,
                    config.max_drop,
                );
            }
            1 => {
                proposal.noise = clamp(
                    proposal.noise + (rng.next_unit() - 0.5) * 0.1,
                    0.0,
                    config.max_noise,
                );
            }
            2 => {
                proposal.refresh = clamp(
                    proposal.refresh + (rng.next_unit() - 0.5) * 0.3,
                    config.min_refresh,
                    1.0,
                );
            }
            3 => {
                let span = config.horizon.saturating_sub(1).max(1);
                proposal.outage_start = 1 + (rng.next_u64() as usize) % span;
                proposal.outage_len = proposal
                    .outage_len
                    .min(config.horizon.saturating_sub(proposal.outage_start));
            }
            _ => {
                let cap = config
                    .max_outage_len
                    .min(config.horizon.saturating_sub(proposal.outage_start));
                proposal.outage_len = if cap == 0 {
                    0
                } else {
                    (rng.next_u64() as usize) % (cap + 1)
                };
            }
        }
        let proposal_score = score(&proposal.plan(config.seed));
        // Metropolis on the maximisation objective.
        let accept = proposal_score >= current_score
            || rng.next_unit() < ((proposal_score - current_score) / temperature.max(1e-12)).exp();
        if accept {
            current = proposal;
            current_score = proposal_score;
            accepted += 1;
            if current_score > best_score {
                best = current;
                best_score = current_score;
            }
        }
        trace.push(AnnealStep {
            iteration,
            score: proposal_score,
            accepted: accept,
            best_score,
        });
        temperature *= config.cooling;
    }

    AnnealResult {
        best_plan: best.plan(config.seed),
        best_score,
        baseline_score,
        evaluations: config.iterations + 1,
        accepted,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_is_deterministic_per_seed_and_never_proposes_invalid_plans() {
        let config = AdversaryConfig::new(100, 3);
        // Score every plan by how much it faults (a smooth stand-in for
        // an engine run): the walk must push every knob towards its cap.
        let score = |p: &FaultPlan| {
            p.drop_probability()
                + p.noise_amplitude()
                + (1.0 - p.refresh_fraction())
                + p.outages()
                    .iter()
                    .map(|w| (w.end - w.start) as f64 / 100.0)
                    .sum::<f64>()
        };
        let a = anneal_fault_plan(&config, score);
        let b = anneal_fault_plan(&config, score);
        assert_eq!(a.best_plan, b.best_plan);
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.trace.len(), config.iterations);
        a.best_plan.validate().unwrap();
        assert!(a.best_score > a.baseline_score, "the walk found damage");
        // Caps respected.
        assert!(a.best_plan.drop_probability() <= config.max_drop);
        assert!(a.best_plan.noise_amplitude() <= config.max_noise);
        assert!(a.best_plan.refresh_fraction() >= config.min_refresh);
        for w in a.best_plan.outages() {
            assert!(w.start >= 1 && w.end <= config.horizon + config.max_outage_len);
        }
    }

    #[test]
    fn different_seeds_explore_differently() {
        let score = |p: &FaultPlan| p.drop_probability();
        let a = anneal_fault_plan(&AdversaryConfig::new(50, 1), score);
        let b = anneal_fault_plan(&AdversaryConfig::new(50, 2), score);
        assert_ne!(a.trace.len(), 0);
        // The walks differ somewhere (scores or acceptance pattern).
        assert!(
            a.best_plan != b.best_plan
                || a.trace.iter().map(|s| s.accepted).collect::<Vec<_>>()
                    != b.trace.iter().map(|s| s.accepted).collect::<Vec<_>>()
        );
    }
}
