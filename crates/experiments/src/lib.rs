//! # wardrop-experiments
//!
//! The experiment harness regenerating every quantitative claim of
//! *Adaptive routing with stale information* (Fischer & Vöcking,
//! PODC 2005 / TCS 2009). One binary per experiment:
//!
//! | ID | binary | claim |
//! |----|--------|-------|
//! | E1 | `exp_oscillation` | §3.2 closed-form best-response oscillation |
//! | E2 | `exp_safe_period` | Corollary 5 safe update period `T*` |
//! | E3 | `exp_potential_lemmas` | Lemma 3 identity, Lemma 4 `ΔΦ ≤ ½V` |
//! | E4 | `exp_thm6_uniform` | Theorem 6 scaling (uniform sampling) |
//! | E5 | `exp_thm7_proportional` | Theorem 7 scaling (proportional) |
//! | E6 | `exp_policy_comparison`, `exp_agents_vs_fluid` | policy zoo, fluid limit |
//! | E7 | `exp_equilibria_poa` | Wardrop background: Φ-minimisation, PoA |
//! | E8 | `exp_beyond_smoothness` | reference \[10\]: elasticity-based relative-slack dynamics |
//! | E9 | `exp_integrator_ablation` | integrator accuracy/work ablation (design choice) |
//! | E10 | `exp_scenario_recovery` | post-shock recovery iff `T ≤ T*` on non-stationary scenarios |
//! | E11 | `exp_fault_governor` | fixed α fails under board faults, the AIMD governor recovers; measured divergence threshold vs `T*` |
//!
//! Beyond the per-claim binaries, **`wardrop-lab`** is the
//! registry-driven scenario runner: `wardrop-lab [--smoke] [--list]
//! [--faults PLAN] [NAME…]` executes the named non-stationary
//! scenarios of [`scenarios`] (`rush-hour`, `link-failure`,
//! `flash-crowd`, `rolling-degradation`, plus the governed fault
//! scenarios `flaky-rush-hour` and `board-outage`) end-to-end and
//! emits per-epoch recovery and tracking-regret tables; `--faults`
//! overlays a fault plan (inline JSON or a file path) on every
//! selected scenario, and [`adversary`] anneals over fault plans for
//! the worst one.
//!
//! Each binary prints aligned tables to stdout and, when the
//! `WARDROP_RESULTS_DIR` environment variable is set, writes the same
//! data as JSON into that directory for scripted consumption.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod scenarios;

use std::fmt::Write as _;
use std::path::PathBuf;

use serde::Serialize;

/// A simple aligned-column table printer for experiment output.
///
/// # Examples
///
/// ```
/// use wardrop_experiments::Table;
///
/// let mut t = Table::new(vec!["x", "y"]);
/// t.row(vec!["1".into(), "2".into()]);
/// let s = t.render();
/// assert!(s.contains('x') && s.contains('2'));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Renders the table with right-aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "{:>width$}  ", h, width = widths[i]);
        }
        out.push('\n');
        for w in &widths {
            let _ = write!(out, "{}  ", "-".repeat(*w));
        }
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:>width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float compactly for tables.
pub fn fmt_g(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e4 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

/// Writes `value` as pretty JSON into `$WARDROP_RESULTS_DIR/<name>.json`
/// when the environment variable is set; otherwise does nothing.
///
/// Experiments call this so CI or notebooks can pick up machine-readable
/// results without parsing stdout.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let Some(dir) = std::env::var_os("WARDROP_RESULTS_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise {name}: {e}"),
    }
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].trim_end().ends_with('1'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_g_ranges() {
        assert_eq!(fmt_g(0.0), "0");
        assert!(fmt_g(123456.0).contains('e'));
        assert!(fmt_g(0.00001).contains('e'));
        assert_eq!(fmt_g(1.5), "1.5000");
    }
}
