//! Tracking a moving equilibrium: per-epoch recovery and regret.
//!
//! Static analysis asks "does the dynamics reach equilibrium?"; under a
//! non-stationary [`Scenario`] the
//! question becomes "how fast does it *re-enter* equilibrium after each
//! shock, and how much does it lose while chasing it?". This module
//! answers both against certified per-epoch ground truth:
//!
//! * **recovery time** — for each epoch (the segment between scenario
//!   events), the number of phases until the run first starts a phase
//!   at a `(δ, ε)`-equilibrium again (Definition 3: the volume of
//!   flow on paths more than `δ` above their commodity's minimum is at
//!   most `ε`) — the exact notion Theorems 6/7 bound;
//! * **potential gap** — `Φ(f) − Φ*_k`, where `Φ*_k` is the
//!   Frank–Wolfe-certified optimal potential of epoch `k`'s mutated
//!   instance;
//! * **tracking regret** — the time-weighted accumulated potential gap
//!   `Σ_phases (Φ(f(t̂)) − Φ*_k) · T`, the natural "area under the
//!   suboptimality curve" of a policy chasing a moving target.
//!
//! Corollary 5 predicts: with an α-smooth policy and every epoch run at
//! `T ≤ T*_k = 1/(4 D α β_k)`, the potential decreases between shocks,
//! so every epoch long enough recovers — experiment E10 and the
//! `wardrop-lab` scenarios exercise exactly this claim.

use serde::{Deserialize, Serialize};
use wardrop_core::theory::safe_update_period;
use wardrop_core::trajectory::Trajectory;
use wardrop_net::instance::Instance;
use wardrop_net::scenario::Scenario;
use wardrop_net::NetError;

use crate::frank_wolfe::{minimise, FrankWolfeConfig, Objective};

/// Per-epoch tracking summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index (number of events applied before it).
    pub epoch: usize,
    /// First phase of the epoch (inclusive).
    pub start_phase: usize,
    /// One past the last phase of the epoch.
    pub end_phase: usize,
    /// Frank–Wolfe-certified optimal potential `Φ*` of the epoch's
    /// instance.
    pub optimum_potential: f64,
    /// The safe update period `T* = 1/(4 D α β)` of the epoch's
    /// instance (for the supplied `alpha`).
    pub safe_period: f64,
    /// Phases from the epoch start until the first phase starting at a
    /// `(δ, ε)`-equilibrium (`unsatisfied[0] ≤ ε`); `None` if the
    /// epoch never recovers.
    pub recovery_phases: Option<usize>,
    /// Max regret at the start of the epoch's first phase (the shock
    /// displacement).
    pub initial_regret: f64,
    /// Max regret at the start of the epoch's last phase.
    pub final_regret: f64,
    /// Potential gap `Φ − Φ*` at the epoch's first phase start.
    pub initial_gap: f64,
    /// Potential gap at the epoch's last phase start.
    pub final_gap: f64,
    /// Time-weighted accumulated potential gap
    /// `Σ (Φ(t̂) − Φ*) · T` over the epoch's phases (clamped at 0:
    /// certified optima can exceed a transient Φ only by solver
    /// tolerance).
    pub tracking_regret: f64,
}

/// Tracking summary of a whole scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackingReport {
    /// The `δ` of the recovery notion (the trajectory's first
    /// configured δ column).
    pub delta: f64,
    /// The `ε` used for recovery detection.
    pub eps: f64,
    /// One report per epoch that contains at least one phase.
    pub epochs: Vec<EpochReport>,
    /// Sum of the per-epoch tracking regrets.
    pub total_tracking_regret: f64,
    /// True iff every epoch recovered.
    pub all_recovered: bool,
    /// The smallest per-epoch safe period — running the whole scenario
    /// at `T ≤ min_k T*_k` keeps Corollary 5 in force across every
    /// shock.
    pub min_safe_period: f64,
}

/// Computes the per-epoch tracking report for a [`Trajectory`] produced
/// by `run_scenario` (or `run_agents_scenario`) on `base` under
/// `scenario`.
///
/// The scenario is replayed on a clone of `base` to recover each
/// epoch's instance; each epoch's ground-truth `Φ*` comes from a
/// certified Frank–Wolfe minimisation, and its `T*` uses the supplied
/// smoothness constant `alpha`.
///
/// # Errors
///
/// Propagates event-application failures from the replay.
///
/// # Panics
///
/// Panics if the trajectory carries no `δ` column (recovery is defined
/// on the `(δ, ε)` notion) or references an epoch the scenario cannot
/// produce (i.e. it was not generated from `scenario`).
pub fn tracking_report(
    base: &Instance,
    scenario: &Scenario,
    traj: &Trajectory,
    alpha: f64,
    eps: f64,
) -> Result<TrackingReport, NetError> {
    assert!(
        !traj.deltas.is_empty(),
        "tracking needs at least one δ column (SimulationConfig::with_deltas)"
    );
    let epoch_instances = scenario.epoch_instances(base)?;
    let fw = FrankWolfeConfig::default();
    let mut epochs = Vec::new();
    let mut min_safe_period = f64::INFINITY;
    for inst in &epoch_instances {
        min_safe_period = min_safe_period.min(safe_update_period(inst, alpha));
    }

    for (epoch, range) in traj.epoch_ranges() {
        assert!(
            epoch < epoch_instances.len(),
            "trajectory epoch {epoch} beyond the scenario's {} events",
            epoch_instances.len() - 1
        );
        let inst = &epoch_instances[epoch];
        let optimum = minimise(inst, Objective::Potential, &fw);
        let records = &traj.phases[range.clone()];
        let recovery_phases = records.iter().position(|p| p.unsatisfied[0] <= eps);
        let tracking_regret: f64 = records
            .iter()
            .map(|p| (p.potential_start - optimum.value).max(0.0) * traj.update_period)
            .sum();
        let first = &records[0];
        let last = &records[records.len() - 1];
        epochs.push(EpochReport {
            epoch,
            start_phase: range.start,
            end_phase: range.end,
            optimum_potential: optimum.value,
            safe_period: safe_update_period(inst, alpha),
            recovery_phases,
            initial_regret: first.max_regret_start,
            final_regret: last.max_regret_start,
            initial_gap: first.potential_start - optimum.value,
            final_gap: last.potential_start - optimum.value,
            tracking_regret,
        });
    }

    let total_tracking_regret = epochs.iter().map(|e| e.tracking_regret).sum();
    let all_recovered = epochs.iter().all(|e| e.recovery_phases.is_some());
    Ok(TrackingReport {
        delta: traj.deltas[0],
        eps,
        epochs,
        total_tracking_regret,
        all_recovered,
        min_safe_period,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wardrop_core::engine::{run_scenario, SimulationConfig};
    use wardrop_core::policy::uniform_linear;
    use wardrop_core::ReroutingPolicy;
    use wardrop_net::builders;
    use wardrop_net::flow::FlowVec;
    use wardrop_net::scenario::DemandSchedule;

    fn pulse_run() -> (Instance, Scenario, Trajectory, f64) {
        let inst = builders::multi_commodity_grid(3, 3, 5);
        let policy = uniform_linear(&inst);
        let alpha = policy.smoothness().unwrap();
        let scenario = Scenario::new("pulse")
            .with_demand_schedule(0, &DemandSchedule::pulse(0.5, 0.8, 2000, 2000));
        // Safe period of the (demand-only) scenario equals the base's.
        let t = wardrop_core::theory::safe_update_period(&inst, alpha);
        let config = SimulationConfig::new(t, 6000);
        let traj =
            run_scenario(&inst, &policy, &FlowVec::uniform(&inst), &config, &scenario).unwrap();
        (inst, scenario, traj, alpha)
    }

    #[test]
    fn every_epoch_recovers_within_safe_period() {
        let (inst, scenario, traj, alpha) = pulse_run();
        let report = tracking_report(&inst, &scenario, &traj, alpha, 0.05).unwrap();
        assert_eq!(report.epochs.len(), 3);
        assert!(report.all_recovered, "epochs: {:#?}", report.epochs);
        assert_eq!(report.delta, 0.05);
        for e in &report.epochs {
            assert!(e.tracking_regret >= 0.0);
            // Recovered and stayed near the epoch optimum.
            assert!(e.final_gap <= 1e-3, "final gap {}", e.final_gap);
            assert!(e.final_gap <= e.initial_gap.max(0.0) + 1e-9);
            assert!(e.safe_period >= report.min_safe_period);
        }
        assert!(report.total_tracking_regret >= 0.0);
        // Demand-only events keep β and D fixed.
        assert!(
            (report.min_safe_period - wardrop_core::theory::safe_update_period(&inst, alpha)).abs()
                < 1e-12
        );
    }

    #[test]
    fn epoch_optima_differ_across_shocks() {
        let (inst, scenario, traj, alpha) = tracking_inputs();
        let report = tracking_report(&inst, &scenario, &traj, alpha, 0.05).unwrap();
        // The surged epoch has a different ground-truth optimum.
        let phi0 = report.epochs[0].optimum_potential;
        let phi1 = report.epochs[1].optimum_potential;
        assert!((phi0 - phi1).abs() > 1e-6, "{phi0} vs {phi1}");
        // Epoch boundaries line up with the scenario events.
        assert_eq!(report.epochs[1].start_phase, 2000);
        assert_eq!(report.epochs[2].start_phase, 4000);
    }

    fn tracking_inputs() -> (Instance, Scenario, Trajectory, f64) {
        pulse_run()
    }

    #[test]
    fn static_runs_produce_single_epoch_reports() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let alpha = policy.smoothness().unwrap();
        let traj = wardrop_core::engine::run(
            &inst,
            &policy,
            &FlowVec::uniform(&inst),
            &SimulationConfig::new(0.25, 200),
        );
        let scenario = Scenario::new("static");
        let report = tracking_report(&inst, &scenario, &traj, alpha, 0.05).unwrap();
        assert_eq!(report.epochs.len(), 1);
        assert!(report.all_recovered);
        // Pigou Φ* = ½.
        assert!((report.epochs[0].optimum_potential - 0.5).abs() < 1e-5);
    }
}
