//! Empirical convergence-rate estimation.
//!
//! The paper proves convergence and bounds the number of *bad phases*;
//! near an equilibrium the smooth dynamics contract roughly
//! geometrically, so the potential gap behaves like
//! `gap(i) ≈ C·e^{−r·t_i}`. Fitting `r` from a trajectory gives a
//! compact empirical convergence speed — useful for comparing policies
//! beyond the worst-case bounds (e.g. the E8 elasticity experiment).

use serde::{Deserialize, Serialize};
use wardrop_core::trajectory::Trajectory;

use crate::stats::linear_fit;

/// An exponential-decay fit `gap(t) ≈ exp(intercept − rate · t)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecayFit {
    /// Decay rate `r` per unit of simulated time (positive =
    /// converging).
    pub rate: f64,
    /// Log-gap intercept at `t = 0` of the fitted window.
    pub log_intercept: f64,
    /// Number of phases used in the fit.
    pub samples: usize,
}

/// Fits an exponential decay rate to the potential gap
/// `Φ(f(t̂)) − Φ*` over the trailing `window` phases.
///
/// Phases whose gap has already collapsed below `floor` are excluded
/// (they are numerical noise around the equilibrium). Returns `None`
/// when fewer than three usable phases remain or the usable gaps do
/// not span distinct times.
pub fn potential_decay_rate(
    traj: &Trajectory,
    phi_star: f64,
    window: usize,
    floor: f64,
) -> Option<DecayFit> {
    let phases = &traj.phases;
    let start = phases.len().saturating_sub(window);
    let mut ts = Vec::new();
    let mut logs = Vec::new();
    for p in &phases[start..] {
        let gap = p.potential_start - phi_star;
        if gap > floor {
            ts.push(p.start_time);
            logs.push(gap.ln());
        }
    }
    if ts.len() < 3 || ts.first() == ts.last() {
        return None;
    }
    let (slope, intercept) = linear_fit(&ts, &logs);
    Some(DecayFit {
        rate: -slope,
        log_intercept: intercept,
        samples: ts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frank_wolfe::optimal_potential;
    use wardrop_core::best_response::BestResponse;
    use wardrop_core::engine::{run, SimulationConfig};
    use wardrop_core::policy::uniform_linear;
    use wardrop_core::theory;
    use wardrop_net::builders;
    use wardrop_net::flow::FlowVec;

    #[test]
    fn convergent_run_has_positive_rate() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let config = SimulationConfig::new(0.25, 800);
        let traj = run(&inst, &policy, &FlowVec::uniform(&inst), &config);
        let phi_star = optimal_potential(&inst);
        let fit = potential_decay_rate(&traj, phi_star, 400, 1e-12).expect("fit exists");
        assert!(fit.rate > 0.0, "rate {}", fit.rate);
        assert!(fit.samples >= 100);
    }

    #[test]
    fn oscillating_run_has_no_decay() {
        let inst = builders::two_link_oscillator(4.0);
        let t = 0.5;
        let f1 = theory::oscillation::initial_flow(t);
        let f0 = FlowVec::from_values(&inst, vec![f1, 1.0 - f1]).unwrap();
        let config = SimulationConfig::new(t, 200);
        let traj = run(&inst, &BestResponse::new(), &f0, &config);
        // Φ* = 0 on this instance; the gap is phase-periodic.
        let fit = potential_decay_rate(&traj, 0.0, 100, 1e-12).expect("gaps stay positive");
        assert!(fit.rate.abs() < 1e-6, "rate {}", fit.rate);
    }

    #[test]
    fn faster_policy_measures_higher_rate() {
        // Doubling α (within the safe regime) doubles migration rates
        // and should measurably speed up the decay. Needs an instance
        // whose equilibrium is interior (both paths used with positive
        // flow): there the linearised dynamics contract exponentially,
        // so the rate is the right summary. (On Pigou the unused path's
        // migration probability vanishes with the gap itself and decay
        // is only algebraic.)
        use wardrop_core::migration::ScaledLinear;
        use wardrop_core::policy::SmoothPolicy;
        use wardrop_core::sampling::Uniform;
        use wardrop_net::Latency;
        let inst = builders::parallel_links(vec![
            Latency::identity(),
            Latency::Affine { a: 0.25, b: 1.0 },
        ]);
        let phi_star = optimal_potential(&inst);
        let rate_for = |alpha: f64| {
            let policy = SmoothPolicy::new(Uniform, ScaledLinear::new(alpha));
            // Short horizon: the faster run must not collapse below the
            // fit floor inside the window.
            let config = SimulationConfig::new(0.1, 200);
            let traj = run(&inst, &policy, &FlowVec::uniform(&inst), &config);
            potential_decay_rate(&traj, phi_star, 150, 1e-12)
                .expect("fit exists")
                .rate
        };
        let slow = rate_for(0.25);
        let fast = rate_for(0.5);
        assert!(fast > 1.5 * slow, "slow {slow}, fast {fast}");
    }

    #[test]
    fn too_few_samples_yield_none() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        // Start at the equilibrium: gap is ~0 everywhere, below floor.
        let f0 = FlowVec::from_values(&inst, vec![1.0, 0.0]).unwrap();
        let traj = run(&inst, &policy, &f0, &SimulationConfig::new(0.25, 50));
        let phi_star = optimal_potential(&inst);
        assert!(potential_decay_rate(&traj, phi_star, 50, 1e-9).is_none());
    }
}
