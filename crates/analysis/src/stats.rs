//! Small statistics helpers for experiment analysis.
//!
//! The Theorem 6/7 experiments verify *scaling shapes* (`∝ m`,
//! `∝ 1/δ²`, `∝ 1/ε`, `∝ 1/T`) rather than absolute constants; the
//! log–log least-squares slope is the standard tool for that.

/// Arithmetic mean. Returns `NaN` for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns `NaN` for empty input.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Ordinary least-squares slope and intercept of `y` against `x`.
///
/// Returns `(slope, intercept)`.
///
/// # Panics
///
/// Panics if the inputs have different lengths or fewer than two
/// points, or if `x` is constant.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    assert!(x.len() >= 2, "need at least two points");
    let mx = mean(x);
    let my = mean(y);
    let sxx: f64 = x.iter().map(|xi| (xi - mx) * (xi - mx)).sum();
    assert!(sxx > 0.0, "x must not be constant");
    let sxy: f64 = x.iter().zip(y).map(|(xi, yi)| (xi - mx) * (yi - my)).sum();
    let slope = sxy / sxx;
    (slope, my - slope * mx)
}

/// The log–log least-squares slope of `y` against `x` — the empirical
/// scaling exponent in `y ∝ x^slope`.
///
/// # Panics
///
/// Panics if any input is non-positive (logs must exist), lengths
/// differ, or fewer than two points are given.
pub fn loglog_slope(x: &[f64], y: &[f64]) -> f64 {
    assert!(
        x.iter().chain(y).all(|v| *v > 0.0),
        "log–log fit requires positive data"
    );
    let lx: Vec<f64> = x.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = y.iter().map(|v| v.ln()).collect();
    linear_fit(&lx, &ly).0
}

/// Pearson correlation coefficient.
///
/// # Panics
///
/// Panics on mismatched lengths, fewer than two points, or zero
/// variance in either input.
pub fn correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 2);
    let (sx, sy) = (std_dev(x), std_dev(y));
    assert!(sx > 0.0 && sy > 0.0, "inputs must vary");
    let mx = mean(x);
    let my = mean(y);
    let cov: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| (a - mx) * (b - my))
        .sum::<f64>()
        / x.len() as f64;
    cov / (sx * sy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_input_yields_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let (slope, intercept) = linear_fit(&x, &y);
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loglog_slope_recovers_power_law() {
        let x: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v.powi(2)).collect();
        assert!((loglog_slope(&x, &y) - 2.0).abs() < 1e-9);
        let y_inv: Vec<f64> = x.iter().map(|v| 5.0 / v).collect();
        assert!((loglog_slope(&x, &y_inv) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_signs() {
        let x = [1.0, 2.0, 3.0];
        let up = [2.0, 4.0, 6.0];
        let down = [6.0, 4.0, 2.0];
        assert!((correlation(&x, &up) - 1.0).abs() < 1e-12);
        assert!((correlation(&x, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn loglog_rejects_nonpositive() {
        let _ = loglog_slope(&[1.0, 0.0], &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn linear_fit_rejects_constant_x() {
        let _ = linear_fit(&[1.0, 1.0], &[1.0, 2.0]);
    }
}
