//! Price of anarchy.
//!
//! Background context for the paper (§1.2 cites Roughgarden–Tardos):
//! the ratio between the social cost at the worst Wardrop equilibrium
//! and at the system optimum. For instances with a unique equilibrium
//! cost (all our builders) Frank–Wolfe on the potential gives the
//! equilibrium and Frank–Wolfe on the social cost the optimum.

use serde::{Deserialize, Serialize};
use wardrop_net::instance::Instance;

use crate::frank_wolfe::{minimise, FrankWolfeConfig, Objective};

/// Equilibrium/optimum analysis of one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoaReport {
    /// Social cost at the computed Wardrop equilibrium.
    pub equilibrium_cost: f64,
    /// Social cost at the computed system optimum.
    pub optimal_cost: f64,
    /// The price of anarchy `equilibrium_cost / optimal_cost`.
    pub price_of_anarchy: f64,
    /// Potential at the equilibrium (`Φ*`).
    pub equilibrium_potential: f64,
}

/// Computes equilibrium cost, optimal cost and the price of anarchy.
///
/// # Examples
///
/// ```
/// use wardrop_net::builders;
/// use wardrop_analysis::poa::price_of_anarchy;
///
/// // Pigou: PoA = 4/3.
/// let report = price_of_anarchy(&builders::pigou());
/// assert!((report.price_of_anarchy - 4.0 / 3.0).abs() < 1e-4);
/// ```
pub fn price_of_anarchy(instance: &Instance) -> PoaReport {
    let config = FrankWolfeConfig::default();
    let eq = minimise(instance, Objective::Potential, &config);
    let opt = minimise(instance, Objective::SocialCost, &config);
    let equilibrium_cost = Objective::SocialCost.eval(instance, &eq.flow);
    // Degenerate instances (e.g. the §3.2 oscillator) have zero cost at
    // both the equilibrium and the optimum; the ratio is 1 by
    // convention rather than 0/0.
    let price_of_anarchy = if opt.value <= f64::EPSILON {
        if equilibrium_cost <= f64::EPSILON {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        equilibrium_cost / opt.value
    };
    PoaReport {
        equilibrium_cost,
        optimal_cost: opt.value,
        price_of_anarchy,
        equilibrium_potential: eq.value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wardrop_net::builders;

    #[test]
    fn pigou_poa_is_four_thirds() {
        let r = price_of_anarchy(&builders::pigou());
        assert!((r.equilibrium_cost - 1.0).abs() < 1e-4);
        assert!((r.optimal_cost - 0.75).abs() < 1e-4);
        assert!((r.price_of_anarchy - 4.0 / 3.0).abs() < 1e-3);
    }

    #[test]
    fn braess_poa_is_four_thirds() {
        let r = price_of_anarchy(&builders::braess());
        assert!((r.equilibrium_cost - 2.0).abs() < 1e-3);
        assert!((r.optimal_cost - 1.5).abs() < 1e-3);
        assert!((r.price_of_anarchy - 4.0 / 3.0).abs() < 1e-2);
    }

    #[test]
    fn zero_cost_instance_has_poa_one() {
        // The §3.2 oscillator: equilibrium (½, ½) has latency 0, and
        // so does the optimum — PoA is 1 by convention, not NaN.
        let r = price_of_anarchy(&builders::two_link_oscillator(2.0));
        assert_eq!(r.price_of_anarchy, 1.0);
        assert!(r.equilibrium_cost.abs() < 1e-9);
    }

    #[test]
    fn poa_at_least_one() {
        for seed in 0..5 {
            let inst = builders::standard_random_links(4, seed);
            let r = price_of_anarchy(&inst);
            assert!(r.price_of_anarchy >= 1.0 - 1e-6, "seed {seed}: {r:?}");
        }
    }

    #[test]
    fn affine_poa_below_four_thirds() {
        // Roughgarden–Tardos: affine latencies ⇒ PoA ≤ 4/3.
        for seed in 0..5 {
            let inst = builders::layered_network(2, 2, seed);
            let r = price_of_anarchy(&inst);
            assert!(r.price_of_anarchy <= 4.0 / 3.0 + 1e-3, "seed {seed}: {r:?}");
        }
    }
}
