//! Convergence metrics extracted from trajectories.
//!
//! Theorems 6 and 7 bound the *number of update periods not starting at
//! an approximate equilibrium* — not the index of the first good phase,
//! since the dynamics may leave and re-enter the approximate
//! equilibrium set. These helpers extract exactly those counts,
//! together with potential-gap summaries against the Frank–Wolfe
//! ground truth.

use serde::{Deserialize, Serialize};
use wardrop_core::trajectory::Trajectory;

/// Which equilibrium notion to count against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EquilibriumKind {
    /// `(δ,ε)`-equilibrium (Definition 3, Theorem 6).
    Strict,
    /// Weak `(δ,ε)`-equilibrium (Definition 4, Theorem 7).
    Weak,
}

/// The number of phases *not starting* at the chosen approximate
/// equilibrium — the quantity bounded by Theorems 6/7.
///
/// # Panics
///
/// Panics if `delta_idx` is out of range for the trajectory's
/// configured `δ` list.
pub fn bad_phase_count(
    traj: &Trajectory,
    kind: EquilibriumKind,
    delta_idx: usize,
    eps: f64,
) -> usize {
    match kind {
        EquilibriumKind::Strict => traj.bad_phase_count(delta_idx, eps),
        EquilibriumKind::Weak => traj.weak_bad_phase_count(delta_idx, eps),
    }
}

/// Index of the last phase not starting at the chosen approximate
/// equilibrium, or `None` if every phase was good.
pub fn last_bad_phase(
    traj: &Trajectory,
    kind: EquilibriumKind,
    delta_idx: usize,
    eps: f64,
) -> Option<usize> {
    traj.phases.iter().rev().find_map(|p| {
        let vol = match kind {
            EquilibriumKind::Strict => p.unsatisfied[delta_idx],
            EquilibriumKind::Weak => p.weakly_unsatisfied[delta_idx],
        };
        (vol > eps).then_some(p.index)
    })
}

/// Potential-gap series `Φ(f(t̂)) − Φ*` at phase starts.
pub fn potential_gap_series(traj: &Trajectory, phi_star: f64) -> Vec<f64> {
    traj.phases
        .iter()
        .map(|p| p.potential_start - phi_star)
        .collect()
}

/// First phase whose start potential is within `tol` of `Φ*`, if any.
pub fn first_phase_within_gap(traj: &Trajectory, phi_star: f64, tol: f64) -> Option<usize> {
    traj.phases
        .iter()
        .position(|p| p.potential_start - phi_star <= tol)
}

/// Summary of a convergence run against the ground-truth `Φ*`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceSummary {
    /// Phases executed.
    pub phases: usize,
    /// Initial potential gap.
    pub initial_gap: f64,
    /// Final potential gap.
    pub final_gap: f64,
    /// Number of phases with increasing potential.
    pub monotonicity_violations: usize,
    /// Worst Lemma 4 slack `ΔΦ − ½V` over all phases.
    pub lemma4_worst_slack: f64,
}

/// Builds a [`ConvergenceSummary`] for a trajectory.
pub fn summarise(traj: &Trajectory, phi_star: f64) -> ConvergenceSummary {
    let gaps = potential_gap_series(traj, phi_star);
    ConvergenceSummary {
        phases: traj.len(),
        initial_gap: gaps.first().copied().unwrap_or(0.0),
        final_gap: traj
            .phases
            .last()
            .map(|p| p.potential_end - phi_star)
            .unwrap_or(0.0),
        monotonicity_violations: traj.monotonicity_violations(1e-10),
        lemma4_worst_slack: traj.lemma4_worst_slack(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frank_wolfe::optimal_potential;
    use wardrop_core::engine::{run, SimulationConfig};
    use wardrop_core::policy::uniform_linear;
    use wardrop_net::builders;
    use wardrop_net::flow::FlowVec;

    fn pigou_run(phases: usize) -> (wardrop_net::Instance, Trajectory) {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.25, phases).with_deltas(vec![0.05]);
        let traj = run(&inst, &policy, &f0, &config);
        (inst, traj)
    }

    #[test]
    fn bad_phases_finite_and_prefix_like() {
        let (_inst, traj) = pigou_run(2000);
        let bad = bad_phase_count(&traj, EquilibriumKind::Strict, 0, 0.1);
        assert!(bad > 0, "starts away from equilibrium");
        assert!(bad < 2000, "must eventually reach the equilibrium set");
        let last = last_bad_phase(&traj, EquilibriumKind::Strict, 0, 0.1).unwrap();
        assert!(last + 1 >= bad);
    }

    #[test]
    fn weak_bad_count_never_exceeds_strict() {
        let (_inst, traj) = pigou_run(500);
        let strict = bad_phase_count(&traj, EquilibriumKind::Strict, 0, 0.1);
        let weak = bad_phase_count(&traj, EquilibriumKind::Weak, 0, 0.1);
        assert!(weak <= strict);
    }

    #[test]
    fn gap_series_decreases_to_zero() {
        let (inst, traj) = pigou_run(2000);
        let phi_star = optimal_potential(&inst);
        let gaps = potential_gap_series(&traj, phi_star);
        assert!(gaps[0] > 0.01);
        assert!(*gaps.last().unwrap() < 0.01);
        let hit = first_phase_within_gap(&traj, phi_star, 0.01).unwrap();
        assert!(hit > 0 && hit < 2000);
    }

    #[test]
    fn summary_reflects_convergence() {
        let (inst, traj) = pigou_run(2000);
        let phi_star = optimal_potential(&inst);
        let s = summarise(&traj, phi_star);
        assert_eq!(s.phases, 2000);
        assert!(s.final_gap < s.initial_gap);
        assert_eq!(s.monotonicity_violations, 0);
        assert!(s.lemma4_worst_slack <= 1e-10);
    }

    #[test]
    fn all_good_run_has_no_last_bad_phase() {
        // Start at the equilibrium: every phase is good.
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::from_values(&inst, vec![1.0, 0.0]).unwrap();
        let config = SimulationConfig::new(0.25, 50).with_deltas(vec![0.05]);
        let traj = run(&inst, &policy, &f0, &config);
        assert_eq!(
            last_bad_phase(&traj, EquilibriumKind::Strict, 0, 0.01),
            None
        );
        assert_eq!(bad_phase_count(&traj, EquilibriumKind::Strict, 0, 0.01), 0);
    }
}
