//! Oscillation detection in simulation trajectories.
//!
//! The §3.2 counterexample produces a period-2 orbit of the phase map
//! (the flow at phase starts). These helpers detect such orbits and
//! quantify persistent non-convergence from recorded trajectories
//! (requires `wardrop_core::SimulationConfig::with_flows`).

use serde::{Deserialize, Serialize};
use wardrop_core::trajectory::Trajectory;

/// Outcome of orbit detection on the phase map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OrbitKind {
    /// The phase map contracts to a fixed point (convergence).
    FixedPoint,
    /// A periodic orbit of the given period (in phases) was detected.
    Periodic(usize),
    /// Neither a fixed point nor a period ≤ the scanned maximum.
    Aperiodic,
}

/// Detects the asymptotic behaviour of the phase map from the recorded
/// phase-start flows.
///
/// Examines the trailing `window` phases: if consecutive flows differ
/// by less than `tol` (L∞) the trajectory is a [`OrbitKind::FixedPoint`];
/// otherwise the smallest period `p ≤ max_period` with
/// `‖f(i) − f(i+p)‖∞ < tol` across the window is reported.
///
/// # Panics
///
/// Panics if the trajectory has no recorded flows or the window exceeds
/// the number of recorded phases.
pub fn detect_orbit(traj: &Trajectory, window: usize, max_period: usize, tol: f64) -> OrbitKind {
    let flows = &traj.flows;
    assert!(
        flows.len() >= window + max_period,
        "need at least window + max_period recorded flows ({} < {} + {})",
        flows.len(),
        window,
        max_period
    );
    let start = flows.len() - window - max_period;
    // Fixed point: period 1.
    for p in 1..=max_period {
        let mut is_periodic = true;
        for i in start..start + window {
            if flows[i].linf_distance(&flows[i + p]) >= tol {
                is_periodic = false;
                break;
            }
        }
        if is_periodic {
            return if p == 1 {
                OrbitKind::FixedPoint
            } else {
                OrbitKind::Periodic(p)
            };
        }
    }
    OrbitKind::Aperiodic
}

/// The oscillation amplitude: maximum L∞ distance between any two
/// phase-start flows within the trailing `window` phases.
///
/// Near zero for convergent runs; bounded away from zero for the §3.2
/// orbit.
///
/// # Panics
///
/// Panics if fewer than `window` flows were recorded.
pub fn amplitude(traj: &Trajectory, window: usize) -> f64 {
    let flows = &traj.flows;
    assert!(flows.len() >= window, "not enough recorded flows");
    let tail = &flows[flows.len() - window..];
    let mut worst = 0.0_f64;
    for i in 0..tail.len() {
        for j in i + 1..tail.len() {
            worst = worst.max(tail[i].linf_distance(&tail[j]));
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use wardrop_core::best_response::BestResponse;
    use wardrop_core::engine::{run, SimulationConfig};
    use wardrop_core::policy::uniform_linear;
    use wardrop_core::theory;
    use wardrop_net::builders;
    use wardrop_net::flow::FlowVec;

    #[test]
    fn best_response_orbit_detected_as_period_two() {
        let t_period = 0.5;
        let inst = builders::two_link_oscillator(2.0);
        let f1 = theory::oscillation::initial_flow(t_period);
        let f0 = FlowVec::from_values(&inst, vec![f1, 1.0 - f1]).unwrap();
        let config = SimulationConfig::new(t_period, 40).with_flows();
        let traj = run(&inst, &BestResponse::new(), &f0, &config);
        assert_eq!(detect_orbit(&traj, 10, 4, 1e-9), OrbitKind::Periodic(2));
        assert!(amplitude(&traj, 10) > 0.1);
    }

    #[test]
    fn smooth_policy_detected_as_fixed_point() {
        let inst = builders::two_link_oscillator(2.0);
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::from_values(&inst, vec![0.9, 0.1]).unwrap();
        let config = SimulationConfig::new(0.25, 400).with_flows();
        let traj = run(&inst, &policy, &f0, &config);
        assert_eq!(detect_orbit(&traj, 10, 4, 1e-6), OrbitKind::FixedPoint);
        assert!(amplitude(&traj, 10) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "recorded flows")]
    fn detect_orbit_requires_flows() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let traj = run(&inst, &policy, &f0, &SimulationConfig::new(0.5, 5));
        let _ = detect_orbit(&traj, 3, 2, 1e-9);
    }
}
