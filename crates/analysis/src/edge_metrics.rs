//! Equilibrium gap metrics computed on **edge flows only**.
//!
//! The enumerated metrics ([`regret`](crate::regret),
//! [`tracking`](crate::tracking), the Frank–Wolfe duality gap) all scan
//! the explicit path arena — `O(P)` work on instances whose `P` may be
//! astronomically larger than the network itself (grid_14x14 carries
//! 10,400,600 implicit paths over 364 edges). This module recovers the
//! same certificates from the aggregate edge flows of a path-free
//! [`EdgeInstance`] by replacing every "minimum over enumerated paths"
//! with a Dijkstra probe over the current edge latencies, `O(E log V)`
//! per commodity:
//!
//! * the Beckmann–McGuire–Winsten potential, exactly;
//! * the Frank–Wolfe **duality gap**
//!   `Σ_e ℓ_e(f_e) f_e − Σ_i r_i · dist_i(ℓ(f))` — the linear oracle
//!   per commodity is exactly a shortest path, so the classic
//!   `gap = ∇Φ(f)·(f − s)` needs no paths at all;
//! * the certified **lower bound** `Φ* ≥ Φ(f) − gap(f)` (convexity of
//!   `Φ`), the edge-level twin of the per-epoch ground truth the
//!   tracking metrics compare against;
//! * the instantaneous **population regret**
//!   `L̄(f) − Σ_i r_i · dist_i(ℓ(f))` — average sustained latency minus
//!   the best-reply latency, the quantity Theorem 6/7 drive to zero.
//!
//! On an enumerated instance both formulations agree to round-off; the
//! unit tests pin this against [`frank_wolfe`](crate::frank_wolfe) and
//! the path-scanning regret.

use serde::{Deserialize, Serialize};
use wardrop_net::edge_flow::EdgeInstance;
use wardrop_net::shortest_path::DijkstraWorkspace;

/// Point-in-time equilibrium certificates for one edge-flow vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeGapReport {
    /// The potential `Φ(f)` at the measured edge flows.
    pub potential: f64,
    /// Frank–Wolfe duality gap `∇Φ(f)·(f − s)` via shortest-path
    /// oracles; non-negative, zero exactly at Wardrop equilibria.
    pub duality_gap: f64,
    /// Certified lower bound on the optimal potential:
    /// `Φ* ≥ potential − duality_gap`.
    pub lower_bound: f64,
    /// Demand-weighted best-reply latency `Σ_i r_i · dist_i(ℓ(f))`.
    pub best_reply_latency: f64,
}

/// The potential `Φ(f) = Σ_e ∫₀^{f_e} ℓ_e(u) du` from edge flows.
///
/// # Panics
///
/// Panics if `edge_flows` does not have one entry per edge.
pub fn edge_potential(edge: &EdgeInstance, edge_flows: &[f64]) -> f64 {
    assert_eq!(edge_flows.len(), edge.num_edges(), "one flow per edge");
    edge.latencies()
        .iter()
        .zip(edge_flows)
        .map(|(l, x)| l.primitive(*x))
        .sum()
}

/// Per-commodity shortest-path distances under the latencies induced by
/// `edge_flows` — the linear-minimisation oracle of Frank–Wolfe, and
/// the best-reply latencies of the regret metrics.
///
/// # Panics
///
/// Panics if `edge_flows` does not have one entry per edge.
pub fn best_reply_distances(edge: &EdgeInstance, edge_flows: &[f64]) -> Vec<f64> {
    assert_eq!(edge_flows.len(), edge.num_edges(), "one flow per edge");
    let latencies: Vec<f64> = edge
        .latencies()
        .iter()
        .zip(edge_flows)
        .map(|(l, x)| l.eval(*x))
        .collect();
    let mut oracle = DijkstraWorkspace::new();
    edge.commodities()
        .iter()
        .map(|c| {
            oracle.run(edge.graph(), c.source, &latencies);
            let d = oracle.distance(c.sink);
            debug_assert!(d.is_finite(), "EdgeInstance validated reachability");
            d
        })
        .collect()
}

/// Computes all edge-level equilibrium certificates at `edge_flows`.
///
/// # Examples
///
/// The duality gap certifies suboptimality without enumerating a single
/// path:
///
/// ```
/// use wardrop_analysis::edge_metrics::edge_gap_report;
/// use wardrop_net::builders;
///
/// let edge = builders::grid_edge_network(4, 4, 7);
/// // A deliberately lopsided flow: everything on one path's edges is
/// // impossible to express here, so probe the all-zero flow instead —
/// // infeasible as a routing, but the certificates are still defined.
/// let report = edge_gap_report(&edge, &vec![0.0; edge.num_edges()]);
/// assert!(report.duality_gap >= 0.0);
/// assert!(report.lower_bound <= report.potential);
/// ```
///
/// # Panics
///
/// Panics if `edge_flows` does not have one entry per edge.
pub fn edge_gap_report(edge: &EdgeInstance, edge_flows: &[f64]) -> EdgeGapReport {
    let potential = edge_potential(edge, edge_flows);
    let distances = best_reply_distances(edge, edge_flows);
    let total_latency: f64 = edge
        .latencies()
        .iter()
        .zip(edge_flows)
        .map(|(l, x)| l.eval(*x) * x)
        .sum();
    let best_reply_latency: f64 = edge
        .commodities()
        .iter()
        .zip(&distances)
        .map(|(c, d)| c.demand * d)
        .sum();
    let duality_gap = (total_latency - best_reply_latency).max(0.0);
    EdgeGapReport {
        potential,
        duality_gap,
        lower_bound: potential - duality_gap,
        best_reply_latency,
    }
}

/// Instantaneous population regret at edge level: the average sustained
/// latency minus the demand-weighted best-reply latency. Non-negative
/// for feasible flows; zero exactly at Wardrop equilibria.
///
/// `avg_latency` is the demand-weighted average latency actually
/// sustained (e.g. [`PhaseRecord::avg_latency_start`]); total demand is
/// normalised to 1, so `Σ_i r_i · dist_i` is directly comparable.
///
/// [`PhaseRecord::avg_latency_start`]: wardrop_core::trajectory::PhaseRecord::avg_latency_start
///
/// # Panics
///
/// Panics if `edge_flows` does not have one entry per edge.
pub fn edge_regret(edge: &EdgeInstance, edge_flows: &[f64], avg_latency: f64) -> f64 {
    let distances = best_reply_distances(edge, edge_flows);
    let best: f64 = edge
        .commodities()
        .iter()
        .zip(&distances)
        .map(|(c, d)| c.demand * d)
        .sum();
    avg_latency - best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frank_wolfe::{minimise, optimal_potential, FrankWolfeConfig, Objective};
    use wardrop_net::builders;
    use wardrop_net::flow::FlowVec;
    use wardrop_net::potential::potential;

    /// Helper: the enumerated instance, its edge twin, and a flow's
    /// edge-flow vector.
    fn setup(inst: &wardrop_net::instance::Instance, flow: &FlowVec) -> (EdgeInstance, Vec<f64>) {
        let edge = EdgeInstance::from_instance(inst).unwrap();
        (edge, flow.edge_flows(inst))
    }

    #[test]
    fn potential_matches_enumerated_formulation() {
        let inst = builders::multi_commodity_grid(3, 3, 9);
        let flow = FlowVec::uniform(&inst);
        let (edge, fe) = setup(&inst, &flow);
        let enumerated = potential(&inst, &flow);
        assert!((edge_potential(&edge, &fe) - enumerated).abs() <= 1e-12);
    }

    #[test]
    fn best_replies_match_path_minima() {
        let inst = builders::grid_network(4, 4, 23);
        let flow = FlowVec::uniform(&inst);
        let (edge, fe) = setup(&inst, &flow);
        let distances = best_reply_distances(&edge, &fe);
        let lp = flow.path_latencies(&inst);
        for (i, d) in distances.iter().enumerate() {
            let brute = inst
                .commodity_paths(i)
                .map(|p| lp[p])
                .fold(f64::INFINITY, f64::min);
            assert!(
                (d - brute).abs() <= 1e-9,
                "commodity {i}: oracle {d}, brute-force {brute}"
            );
        }
    }

    #[test]
    fn duality_gap_matches_frank_wolfe_gap() {
        let inst = builders::multi_commodity_grid(3, 3, 5);
        let flow = FlowVec::uniform(&inst);
        let (edge, fe) = setup(&inst, &flow);
        // The enumerated FW gap at `flow`: ∇Φ(f)·(f − s) with s the
        // best-path vertex per commodity.
        let grad = Objective::Potential.gradient(&inst, &flow);
        let mut expected = 0.0;
        for (i, c) in inst.commodities().iter().enumerate() {
            let best = inst
                .commodity_paths(i)
                .map(|p| grad[p])
                .fold(f64::INFINITY, f64::min);
            for p in inst.commodity_paths(i) {
                expected += grad[p] * flow.values()[p];
            }
            expected -= best * c.demand;
        }
        let report = edge_gap_report(&edge, &fe);
        assert!(
            (report.duality_gap - expected).abs() <= 1e-9,
            "edge gap {}, enumerated gap {expected}",
            report.duality_gap
        );
    }

    #[test]
    fn lower_bound_is_tight_at_equilibrium() {
        let inst = builders::grid_network(3, 3, 5);
        let eq = minimise(&inst, Objective::Potential, &FrankWolfeConfig::default());
        let (edge, fe) = setup(&inst, &eq.flow);
        let report = edge_gap_report(&edge, &fe);
        let phi_star = optimal_potential(&inst);
        // Lower bound is valid…
        assert!(report.lower_bound <= phi_star + 1e-9);
        // …and tight at (approximate) equilibrium.
        assert!(phi_star - report.lower_bound <= 1e-4);
        assert!(report.duality_gap <= 1e-4);
    }

    #[test]
    fn regret_vanishes_at_equilibrium_and_not_before() {
        let inst = builders::braess();
        let (edge, fe_uniform) = setup(&inst, &FlowVec::uniform(&inst));
        let uniform = FlowVec::uniform(&inst);
        let avg_uniform = uniform.avg_latency(&inst);
        assert!(edge_regret(&edge, &fe_uniform, avg_uniform) > 1e-3);

        let eq = minimise(&inst, Objective::Potential, &FrankWolfeConfig::default());
        let fe_eq = eq.flow.edge_flows(&inst);
        let avg_eq = eq.flow.avg_latency(&inst);
        let r = edge_regret(&edge, &fe_eq, avg_eq);
        assert!(r.abs() <= 1e-3, "equilibrium regret {r}");
    }
}
