//! # wardrop-analysis
//!
//! Equilibrium solvers and trajectory analysis for the reproduction of
//! *Adaptive routing with stale information* (Fischer & Vöcking,
//! PODC 2005 / TCS 2009).
//!
//! * [`edge_metrics`] — the same certificates from edge flows alone
//!   (`O(E log V)` shortest-path oracles instead of `O(P)` path scans)
//!   for the implicit-path backend;
//! * [`frank_wolfe`] — certified minimisation of the
//!   Beckmann–McGuire–Winsten potential (ground-truth Wardrop
//!   equilibria, `Φ*`) and of the social cost (system optima);
//! * [`poa`] — price-of-anarchy reports;
//! * [`oscillation`] — periodic-orbit detection on the phase map (the
//!   §3.2 counterexample);
//! * [`metrics`] — bad-phase counts (the Theorem 6/7 quantities) and
//!   potential-gap summaries;
//! * [`tracking`] — per-epoch recovery times, potential gaps and
//!   tracking regret for non-stationary scenario runs, against
//!   per-epoch Frank–Wolfe ground truth;
//! * [`robustness`] — recovery, worst potential excursion and the
//!   measured divergence threshold of faulted runs, against the
//!   theoretical safe period `T*`;
//! * [`stats`] — means, fits and the log–log scaling slopes used to
//!   verify the theorems' shapes.
//!
//! # Examples
//!
//! ```
//! use wardrop_net::builders;
//! use wardrop_analysis::poa::price_of_anarchy;
//!
//! let report = price_of_anarchy(&builders::braess());
//! assert!((report.price_of_anarchy - 4.0 / 3.0).abs() < 1e-2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edge_metrics;
pub mod frank_wolfe;
pub mod metrics;
pub mod oscillation;
pub mod poa;
pub mod rates;
pub mod regret;
pub mod robustness;
pub mod stats;
pub mod tracking;

pub use edge_metrics::{best_reply_distances, edge_gap_report, edge_regret, EdgeGapReport};
pub use frank_wolfe::{minimise, FrankWolfeConfig, FrankWolfeResult, Objective};
pub use metrics::{bad_phase_count, summarise, ConvergenceSummary, EquilibriumKind};
pub use oscillation::{amplitude, detect_orbit, OrbitKind};
pub use poa::{price_of_anarchy, PoaReport};
pub use rates::{potential_decay_rate, DecayFit};
pub use regret::{population_regret, RegretReport};
pub use robustness::{
    divergence_threshold, divergence_threshold_by, robustness_report, worst_excursion,
    RobustnessReport, SafetyMargin,
};
pub use tracking::{tracking_report, EpochReport, TrackingReport};
