//! Robustness analysis of faulted runs: recovery, excursion and the
//! measured safety margin.
//!
//! The fault layer ([`wardrop_core::fault`]) turns the bulletin board
//! into a lossy channel; this module quantifies what that does to the
//! dynamics:
//!
//! * [`robustness_report`] — did the run *recover* (re-enter and stay
//!   at a `(δ, ε)`-equilibrium), when, and how far the potential was
//!   pushed above its running minimum on the way
//!   ([`worst_excursion`]);
//! * [`divergence_threshold`] — a bisection over the update period `T`
//!   locating the *measured* boundary between "potential stays
//!   monotone" and "Lemma 4 breaks", to compare against the
//!   theoretical safe period `T* = 1/(4 D α β)` — the paper's bound is
//!   conservative, and the sweep reports by how much.
//!
//! All inputs are plain [`Trajectory`] values, so the same analysis
//! applies to the enumerated backend, the implicit-path backend and
//! the finite-population agents simulation.

use serde::{Deserialize, Serialize};
use wardrop_core::trajectory::Trajectory;

/// How a faulted run weathered its fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// The `δ` of the recovery notion (the trajectory's first
    /// configured δ column).
    pub delta: f64,
    /// The `ε` used for recovery detection.
    pub eps: f64,
    /// Whether the run ends *stably* recovered: from
    /// [`recovery_phase`](Self::recovery_phase) on, every phase starts
    /// at a `(δ, ε)`-equilibrium.
    pub recovered: bool,
    /// First phase index from which every subsequent phase starts at a
    /// `(δ, ε)`-equilibrium; `None` if the run never settles.
    pub recovery_phase: Option<usize>,
    /// Wall-clock time of the recovery phase start.
    pub recovery_time: Option<f64>,
    /// Worst potential excursion above the running minimum,
    /// `max_i (Φ_i − min_{j≤i} Φ_j)` — zero for a monotone run.
    pub worst_excursion: f64,
    /// Number of phases whose potential increased beyond `1e-9`.
    pub monotonicity_violations: usize,
    /// Potential at the start of the first phase.
    pub initial_potential: f64,
    /// Potential at the end of the last phase.
    pub final_potential: f64,
}

/// Worst potential excursion above the running minimum:
/// `max_i (Φ_i − min_{j≤i} Φ_j)` over the potential series (phase
/// starts plus the final phase end). Zero for a monotone run; under
/// faults it measures how far the dynamics was pushed back uphill.
pub fn worst_excursion(traj: &Trajectory) -> f64 {
    let mut running_min = f64::INFINITY;
    let mut worst = 0.0_f64;
    for phi in traj.potential_series() {
        running_min = running_min.min(phi);
        worst = worst.max(phi - running_min);
    }
    worst
}

/// Summarises a (typically faulted) run: stable recovery, worst
/// excursion and monotonicity damage. Recovery is *suffix*-stable —
/// the first phase from which the run never leaves the `(δ, ε)`-ball
/// again — which is stricter than
/// [`Trajectory::first_good_phase`] and the right notion under faults,
/// where a run can touch equilibrium and be knocked out again.
///
/// # Panics
///
/// Panics if the trajectory records no δ columns.
pub fn robustness_report(traj: &Trajectory, eps: f64) -> RobustnessReport {
    assert!(
        !traj.deltas.is_empty(),
        "trajectory must record at least one δ column"
    );
    let recovery_phase = traj
        .phases
        .iter()
        .rposition(|p| p.unsatisfied[0] > eps)
        .map(|last_bad| last_bad + 1)
        .or(Some(0))
        .filter(|&i| i < traj.len());
    let recovered = recovery_phase.is_some();
    RobustnessReport {
        delta: traj.deltas[0],
        eps,
        recovered,
        recovery_phase,
        recovery_time: recovery_phase.map(|i| traj.phases[i].start_time),
        worst_excursion: worst_excursion(traj),
        monotonicity_violations: traj.monotonicity_violations(1e-9),
        initial_potential: traj.phases.first().map_or(0.0, |p| p.potential_start),
        final_potential: traj.phases.last().map_or(0.0, |p| p.potential_end),
    }
}

/// The measured divergence threshold of the update period, against the
/// theoretical safe period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyMargin {
    /// The theoretical safe period `T*` supplied by the caller.
    pub theoretical: f64,
    /// Largest tested period with zero monotonicity violations.
    pub safe_period: f64,
    /// Smallest tested period where the potential increased.
    pub unsafe_period: f64,
    /// Bisection midpoint of the final bracket — the measured
    /// threshold.
    pub measured_threshold: f64,
    /// `measured_threshold / theoretical` — how conservative the
    /// Lemma-4 bound is on this instance (≥ 1 when the theory holds).
    pub margin: f64,
}

/// Bisects the update period between a safe bracket end `t_lo` and an
/// unsafe end `t_hi`, classifying each period with `run` (safe ⇔ the
/// returned trajectory has zero monotonicity violations at `tol`).
/// Returns the measured threshold and its ratio to the theoretical
/// `t_star`.
///
/// # Panics
///
/// Panics if the bracket is inverted, or if `run(t_lo)` is unsafe /
/// `run(t_hi)` is safe (no threshold inside the bracket).
pub fn divergence_threshold(
    run: impl FnMut(f64) -> Trajectory,
    t_star: f64,
    t_lo: f64,
    t_hi: f64,
    iterations: usize,
    tol: f64,
) -> SafetyMargin {
    divergence_threshold_by(
        run,
        |traj| traj.monotonicity_violations(tol) == 0,
        t_star,
        t_lo,
        t_hi,
        iterations,
    )
}

/// As [`divergence_threshold`], but with a caller-supplied safety
/// classifier — e.g. `traj.lemma4_violations(tol) == 0` to locate
/// where the Lemma-4 slack inequality `ΔΦ ≤ ½V` itself first breaks
/// (a tighter notion than plain potential monotonicity).
///
/// # Panics
///
/// Panics if the bracket is inverted, or if `run(t_lo)` is unsafe /
/// `run(t_hi)` is safe (no threshold inside the bracket).
pub fn divergence_threshold_by(
    mut run: impl FnMut(f64) -> Trajectory,
    is_safe: impl Fn(&Trajectory) -> bool,
    t_star: f64,
    t_lo: f64,
    t_hi: f64,
    iterations: usize,
) -> SafetyMargin {
    assert!(
        t_lo.is_finite() && t_hi.is_finite() && t_lo < t_hi,
        "bracket must satisfy t_lo < t_hi"
    );
    assert!(is_safe(&run(t_lo)), "lower bracket end {t_lo} must be safe");
    assert!(
        !is_safe(&run(t_hi)),
        "upper bracket end {t_hi} must be unsafe"
    );
    let (mut lo, mut hi) = (t_lo, t_hi);
    for _ in 0..iterations {
        let mid = 0.5 * (lo + hi);
        if is_safe(&run(mid)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let measured = 0.5 * (lo + hi);
    SafetyMargin {
        theoretical: t_star,
        safe_period: lo,
        unsafe_period: hi,
        measured_threshold: measured,
        margin: measured / t_star,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wardrop_core::trajectory::PhaseRecord;
    use wardrop_net::builders;
    use wardrop_net::flow::FlowVec;

    fn record(index: usize, phi0: f64, phi1: f64, unsat: f64) -> PhaseRecord {
        PhaseRecord {
            index,
            epoch: 0,
            start_time: index as f64,
            potential_start: phi0,
            potential_end: phi1,
            virtual_gain: 0.0,
            avg_latency_start: 0.0,
            max_regret_start: 0.0,
            unsatisfied: vec![unsat],
            weakly_unsatisfied: vec![unsat],
        }
    }

    fn traj(phases: Vec<PhaseRecord>) -> Trajectory {
        let inst = builders::pigou();
        Trajectory {
            update_period: 1.0,
            deltas: vec![0.05],
            phases,
            flows: Vec::new(),
            flow_stride: 1,
            final_flow: FlowVec::uniform(&inst),
            dynamics: "test".into(),
        }
    }

    #[test]
    fn worst_excursion_measures_uphill_push() {
        // Monotone: no excursion.
        let t = traj(vec![record(0, 5.0, 4.0, 1.0), record(1, 4.0, 3.0, 0.0)]);
        assert_eq!(worst_excursion(&t), 0.0);
        // Dips to 2, then is pushed back up to 3.5: excursion 1.5.
        let t = traj(vec![
            record(0, 5.0, 2.0, 1.0),
            record(1, 2.0, 3.5, 1.0),
            record(2, 3.5, 3.0, 0.0),
        ]);
        assert!((worst_excursion(&t) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn recovery_is_suffix_stable() {
        // Touches equilibrium at phase 1, knocked out at 2, settles at 3.
        let t = traj(vec![
            record(0, 5.0, 4.0, 1.0),
            record(1, 4.0, 3.0, 0.0),
            record(2, 3.0, 2.5, 0.7),
            record(3, 2.5, 2.0, 0.0),
            record(4, 2.0, 1.9, 0.0),
        ]);
        let r = robustness_report(&t, 0.05);
        assert!(r.recovered);
        assert_eq!(r.recovery_phase, Some(3));
        assert_eq!(r.recovery_time, Some(3.0));
        // Never settles: the last phase is still bad.
        let t = traj(vec![record(0, 5.0, 4.0, 1.0), record(1, 4.0, 5.0, 0.9)]);
        let r = robustness_report(&t, 0.05);
        assert!(!r.recovered);
        assert_eq!(r.recovery_phase, None);
        assert_eq!(r.monotonicity_violations, 1);
    }

    #[test]
    fn always_good_run_recovers_at_phase_zero() {
        let t = traj(vec![record(0, 5.0, 4.0, 0.0), record(1, 4.0, 3.0, 0.0)]);
        let r = robustness_report(&t, 0.05);
        assert_eq!(r.recovery_phase, Some(0));
        assert_eq!(r.worst_excursion, 0.0);
    }

    #[test]
    fn divergence_threshold_bisects_a_step_function() {
        // Synthetic oracle: safe iff T < 0.4375 (so the threshold is
        // known exactly); theoretical T* = 0.25 ⇒ margin 1.75.
        let oracle = |t: f64| {
            if t < 0.4375 {
                traj(vec![record(0, 5.0, 4.0, 0.0)])
            } else {
                traj(vec![record(0, 5.0, 6.0, 1.0)])
            }
        };
        let m = divergence_threshold(oracle, 0.25, 0.25, 1.0, 30, 1e-9);
        assert!((m.measured_threshold - 0.4375).abs() < 1e-6);
        assert!((m.margin - 1.75).abs() < 1e-5);
        assert!(m.safe_period < m.unsafe_period);
    }

    #[test]
    fn divergence_threshold_on_a_real_run() {
        // The linear policy on the two-link oscillator (interior
        // equilibrium, so a long stale phase overshoots): safe at T*,
        // unsafe far past it — the measured threshold brackets how
        // conservative Lemma 4 is.
        use wardrop_core::{engine, policy, theory, ReroutingPolicy};
        let inst = builders::two_link_oscillator(4.0);
        let pol = policy::uniform_linear(&inst);
        let alpha = pol.smoothness().unwrap();
        let t_star = theory::safe_update_period(&inst, alpha);
        // Uniform is the (symmetric) equilibrium — start off-centre so
        // a long stale phase can overshoot it.
        let f0 = FlowVec::from_values(&inst, vec![0.8, 0.2]).unwrap();
        let run = |t: f64| {
            let config = engine::SimulationConfig::new(t, 60);
            engine::run(&inst, &pol, &f0, &config)
        };
        let m = divergence_threshold(run, t_star, t_star, 400.0 * t_star, 24, 1e-9);
        // Lemma 4 holds at T* and the bound is conservative.
        assert!(m.margin >= 1.0, "margin {}", m.margin);
    }
}
