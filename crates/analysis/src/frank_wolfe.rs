//! Frank–Wolfe (conditional gradient) minimisation over the flow
//! polytope.
//!
//! Two convex objectives matter for the paper:
//!
//! * the Beckmann–McGuire–Winsten **potential** `Φ(f)` — its minimisers
//!   are exactly the Wardrop equilibria, giving the ground-truth `Φ*`
//!   against which trajectories are measured;
//! * the **social cost** `C(f) = Σ_e f_e ℓ_e(f_e)` — its minimisers are
//!   the system optima, needed for price-of-anarchy numbers.
//!
//! Frank–Wolfe fits the path formulation perfectly: the linear
//! minimisation oracle puts each commodity's demand on the path with
//! the smallest gradient component (a "shortest path" under gradient
//! edge weights), and the duality gap `∇obj(f)·(f − s)` upper-bounds
//! the suboptimality, giving a certified stopping rule. Because the
//! plain FW step converges only at rate O(1/k), the solver takes
//! *pairwise* (path-equilibration) steps — shifting mass from the
//! costliest used path to the cheapest path of each commodity with
//! exact line search — which converge linearly in practice while the
//! FW gap still certifies optimality.

use serde::{Deserialize, Serialize};
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;
use wardrop_net::potential::potential;

/// The convex objective to minimise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// The Beckmann–McGuire–Winsten potential; minimisers are Wardrop
    /// equilibria.
    Potential,
    /// Total travel time `Σ_e f_e ℓ_e(f_e)`; minimisers are system
    /// optima.
    SocialCost,
}

impl Objective {
    /// Evaluates the objective at `flow`.
    pub fn eval(&self, instance: &Instance, flow: &FlowVec) -> f64 {
        match self {
            Objective::Potential => potential(instance, flow),
            Objective::SocialCost => {
                let fe = flow.edge_flows(instance);
                instance
                    .latencies()
                    .iter()
                    .zip(&fe)
                    .map(|(l, x)| x * l.eval(*x))
                    .sum()
            }
        }
    }

    /// Per-path gradient components at `flow`.
    ///
    /// * Potential: `∂Φ/∂f_P = ℓ_P(f)`.
    /// * Social cost: `∂C/∂f_P = Σ_{e ∈ P} (ℓ_e(f_e) + f_e ℓ'_e(f_e))`
    ///   (marginal-cost latencies).
    pub fn gradient(&self, instance: &Instance, flow: &FlowVec) -> Vec<f64> {
        let fe = flow.edge_flows(instance);
        let edge_grad: Vec<f64> = match self {
            Objective::Potential => instance
                .latencies()
                .iter()
                .zip(&fe)
                .map(|(l, x)| l.eval(*x))
                .collect(),
            Objective::SocialCost => instance
                .latencies()
                .iter()
                .zip(&fe)
                .map(|(l, x)| l.eval(*x) + x * l.derivative(*x))
                .collect(),
        };
        instance
            .paths()
            .iter()
            .map(|p| p.edges().iter().map(|e| edge_grad[e.index()]).sum())
            .collect()
    }
}

/// Configuration for the Frank–Wolfe solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrankWolfeConfig {
    /// Stop when the duality gap drops below this value.
    pub gap_tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Bisection steps for the exact line search.
    pub line_search_steps: usize,
}

impl Default for FrankWolfeConfig {
    fn default() -> Self {
        // Frank–Wolfe converges at rate O(1/k); a 1e-6 certified gap is
        // reachable in tens of thousands of iterations even for interior
        // optima and is far below the tolerances the experiments use.
        FrankWolfeConfig {
            gap_tolerance: 1e-6,
            max_iterations: 50_000,
            line_search_steps: 50,
        }
    }
}

/// Result of a Frank–Wolfe run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrankWolfeResult {
    /// The (approximately) optimal flow.
    pub flow: FlowVec,
    /// Objective value at `flow`.
    pub value: f64,
    /// Final duality gap (suboptimality certificate).
    pub gap: f64,
    /// Iterations performed.
    pub iterations: usize,
}

/// Minimises `objective` over the feasible flows of `instance`.
///
/// Starts from the uniform flow. Deterministic.
///
/// # Examples
///
/// ```
/// use wardrop_net::builders;
/// use wardrop_analysis::frank_wolfe::{minimise, Objective, FrankWolfeConfig};
///
/// let inst = builders::pigou();
/// let eq = minimise(&inst, Objective::Potential, &FrankWolfeConfig::default());
/// // Pigou equilibrium: all flow on the ℓ(x) = x link, Φ* = ½.
/// assert!((eq.value - 0.5).abs() < 1e-6);
/// ```
pub fn minimise(
    instance: &Instance,
    objective: Objective,
    config: &FrankWolfeConfig,
) -> FrankWolfeResult {
    let mut flow = FlowVec::uniform(instance);
    let mut gap = f64::INFINITY;
    let mut iterations = 0;

    for it in 0..config.max_iterations {
        iterations = it + 1;
        let grad = objective.gradient(instance, &flow);

        // FW duality gap with the linear-oracle vertex s (all demand on
        // the best path per commodity): gap = ∇obj(f)·(f − s).
        gap = 0.0;
        let mut best_paths = Vec::with_capacity(instance.num_commodities());
        for (i, c) in instance.commodities().iter().enumerate() {
            let range = instance.commodity_paths(i);
            let best = range
                .clone()
                .min_by(|a, b| grad[*a].partial_cmp(&grad[*b]).expect("finite gradients"))
                .expect("commodities have paths");
            best_paths.push(best);
            for p in instance.commodity_paths(i) {
                gap += grad[p] * flow.values()[p];
            }
            gap -= grad[best] * c.demand;
        }
        if gap <= config.gap_tolerance {
            break;
        }

        // Pairwise (path-equilibration) step per commodity: shift mass
        // from the costliest *used* path to the best path, with exact
        // line search by bisection on the directional derivative. This
        // moves along polytope edges and avoids the O(1/k) zig-zagging
        // of the plain FW step, giving fast convergence to tight gaps.
        let mut moved = false;
        for (i, &best) in best_paths.iter().enumerate() {
            let grad = objective.gradient(instance, &flow);
            let worst = instance
                .commodity_paths(i)
                .filter(|p| flow.values()[*p] > 0.0)
                .max_by(|a, b| grad[*a].partial_cmp(&grad[*b]).expect("finite gradients"))
                .expect("demand is positive");
            if worst == best || grad[worst] - grad[best] <= 0.0 {
                continue;
            }
            let budget = flow.values()[worst];
            let dderiv = |t: f64| -> f64 {
                let mut probe = flow.values().to_vec();
                probe[worst] -= t;
                probe[best] += t;
                let g = objective.gradient(instance, &FlowVec::from_values_unchecked(probe));
                g[best] - g[worst]
            };
            let step = if dderiv(budget) <= 0.0 {
                budget
            } else {
                let (mut lo, mut hi) = (0.0, budget);
                for _ in 0..config.line_search_steps {
                    let mid = 0.5 * (lo + hi);
                    if dderiv(mid) <= 0.0 {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                0.5 * (lo + hi)
            };
            if step > 0.0 {
                flow.values_mut()[worst] -= step;
                flow.values_mut()[best] += step;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    let value = objective.eval(instance, &flow);
    FrankWolfeResult {
        flow,
        value,
        gap,
        iterations,
    }
}

/// Convenience: the Wardrop-equilibrium potential `Φ*` of an instance.
pub fn optimal_potential(instance: &Instance) -> f64 {
    minimise(instance, Objective::Potential, &FrankWolfeConfig::default()).value
}

#[cfg(test)]
mod tests {
    use super::*;
    use wardrop_net::builders;
    use wardrop_net::equilibrium::is_wardrop_equilibrium;

    #[test]
    fn pigou_equilibrium_and_optimum() {
        let inst = builders::pigou();
        let eq = minimise(&inst, Objective::Potential, &FrankWolfeConfig::default());
        assert!(eq.gap <= 1e-9);
        assert!(is_wardrop_equilibrium(&inst, &eq.flow, 1e-4));
        assert!((eq.flow.values()[0] - 1.0).abs() < 1e-4);

        let opt = minimise(&inst, Objective::SocialCost, &FrankWolfeConfig::default());
        // Optimum: f₁ = ½ (marginal cost 2x = 1 = constant link).
        assert!((opt.flow.values()[0] - 0.5).abs() < 1e-4);
        assert!((opt.value - 0.75).abs() < 1e-6);
    }

    #[test]
    fn braess_equilibrium_uses_zigzag() {
        let inst = builders::braess();
        let eq = minimise(&inst, Objective::Potential, &FrankWolfeConfig::default());
        assert!(is_wardrop_equilibrium(&inst, &eq.flow, 1e-4));
        // Equilibrium: all flow on s-a-b-t, cost 2.
        let cost = eq.flow.avg_latency(&inst);
        assert!((cost - 2.0).abs() < 1e-3, "avg latency {cost}");
    }

    #[test]
    fn braess_social_optimum_splits() {
        let inst = builders::braess();
        let opt = minimise(&inst, Objective::SocialCost, &FrankWolfeConfig::default());
        // Optimum ignores the chord and splits evenly: C = 1.5.
        assert!((opt.value - 1.5).abs() < 1e-4, "social cost {}", opt.value);
    }

    #[test]
    fn oscillator_equilibrium_is_half_half() {
        let inst = builders::two_link_oscillator(2.0);
        let eq = minimise(&inst, Objective::Potential, &FrankWolfeConfig::default());
        // Φ* = 0, achieved on a plateau containing (½, ½).
        assert!(eq.value.abs() < 1e-9);
        assert!(eq.flow.values()[0] <= 0.5 + 1e-6);
        assert!(eq.flow.values()[1] <= 0.5 + 1e-6);
    }

    #[test]
    fn equilibrium_on_random_parallel_links() {
        let inst = builders::standard_random_links(6, 11);
        let eq = minimise(&inst, Objective::Potential, &FrankWolfeConfig::default());
        assert!(eq.gap <= 1e-6);
        assert!(is_wardrop_equilibrium(&inst, &eq.flow, 1e-3));
    }

    #[test]
    fn equilibrium_on_grid() {
        let inst = builders::grid_network(3, 3, 5);
        let eq = minimise(&inst, Objective::Potential, &FrankWolfeConfig::default());
        assert!(is_wardrop_equilibrium(&inst, &eq.flow, 1e-3));
    }

    #[test]
    fn gap_certifies_suboptimality() {
        let inst = builders::braess();
        let loose = FrankWolfeConfig {
            gap_tolerance: 1e-2,
            ..FrankWolfeConfig::default()
        };
        let tight = FrankWolfeConfig::default();
        let a = minimise(&inst, Objective::Potential, &loose);
        let b = minimise(&inst, Objective::Potential, &tight);
        // By convexity: value(a) − value* ≤ gap(a).
        assert!(a.value - b.value <= a.gap + 1e-9);
        assert!(b.value <= a.value + 1e-12);
    }

    #[test]
    fn iteration_cap_respected() {
        let inst = builders::braess();
        let config = FrankWolfeConfig {
            gap_tolerance: 0.0,
            max_iterations: 5,
            line_search_steps: 30,
        };
        let r = minimise(&inst, Objective::Potential, &config);
        // The cap bounds the work; the solver may stop earlier if it
        // lands exactly on a vertex optimum (gap = 0).
        assert!(r.iterations <= 5);
    }

    #[test]
    fn optimal_potential_helper() {
        let inst = builders::pigou();
        assert!((optimal_potential(&inst) - 0.5).abs() < 1e-6);
    }
}
