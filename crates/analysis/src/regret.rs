//! Population regret along trajectories.
//!
//! The related work the paper positions itself against (§1.2: Awerbuch
//! & Kleinberg; Blum, Even-Dar & Ligett) measures routing quality by
//! **regret**: the gap between the average latency actually sustained
//! and the latency of the best fixed path in hindsight. For a recorded
//! trajectory with phase-start flows `f(0), …, f(n−1)`:
//!
//! ```text
//! regret_i = (1/n) Σ_t L_i(f(t))  −  min_{P ∈ P_i} (1/n) Σ_t ℓ_P(f(t))
//! ```
//!
//! Convergent dynamics drive the regret of every commodity to zero;
//! oscillating dynamics sustain positive regret forever — a compact
//! scalar distinguishing the paper's two regimes.

use serde::{Deserialize, Serialize};
use wardrop_core::trajectory::Trajectory;
use wardrop_net::instance::Instance;

/// Per-commodity regret report for one trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretReport {
    /// Time-averaged average latency per commodity.
    pub avg_latency: Vec<f64>,
    /// Latency of the best fixed path in hindsight, per commodity.
    pub best_fixed_path_latency: Vec<f64>,
    /// `avg_latency − best_fixed_path_latency`, per commodity.
    pub regret: Vec<f64>,
    /// Number of phases averaged over.
    pub phases: usize,
}

impl RegretReport {
    /// The largest regret over commodities.
    pub fn max_regret(&self) -> f64 {
        self.regret.iter().copied().fold(0.0, f64::max)
    }
}

/// Computes the population regret of a recorded trajectory.
///
/// Requires phase-start flows (`SimulationConfig::with_flows` /
/// `AgentSimConfig::with_flows`).
///
/// # Panics
///
/// Panics if the trajectory has no recorded flows.
pub fn population_regret(instance: &Instance, traj: &Trajectory) -> RegretReport {
    assert!(
        !traj.flows.is_empty(),
        "regret needs recorded flows (enable with_flows)"
    );
    let n = traj.flows.len();
    let k = instance.num_commodities();
    let mut avg_latency = vec![0.0; k];
    // Time-averaged latency of every path.
    let mut path_avg = vec![0.0; instance.num_paths()];
    for flow in &traj.flows {
        let lp = flow.path_latencies(instance);
        let li = flow.commodity_avg_latencies(instance);
        for (acc, l) in path_avg.iter_mut().zip(&lp) {
            *acc += l / n as f64;
        }
        for (acc, l) in avg_latency.iter_mut().zip(&li) {
            *acc += l / n as f64;
        }
    }
    let best_fixed_path_latency: Vec<f64> = (0..k)
        .map(|i| {
            instance
                .commodity_paths(i)
                .map(|p| path_avg[p])
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let regret = avg_latency
        .iter()
        .zip(&best_fixed_path_latency)
        .map(|(a, b)| a - b)
        .collect();
    RegretReport {
        avg_latency,
        best_fixed_path_latency,
        regret,
        phases: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wardrop_core::best_response::BestResponse;
    use wardrop_core::engine::{run, SimulationConfig};
    use wardrop_core::policy::uniform_linear;
    use wardrop_core::theory;
    use wardrop_net::builders;
    use wardrop_net::flow::FlowVec;

    #[test]
    fn convergent_run_has_vanishing_regret() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        // Skip the transient by measuring a long run.
        let config = SimulationConfig::new(0.25, 3000).with_flows();
        let traj = run(&inst, &policy, &f0, &config);
        let report = population_regret(&inst, &traj);
        assert!(report.max_regret() < 0.02, "regret {:?}", report.regret);
        assert_eq!(report.phases, 3000);
    }

    #[test]
    fn oscillating_run_sustains_regret() {
        let inst = builders::two_link_oscillator(4.0);
        let t = 0.5;
        let f1 = theory::oscillation::initial_flow(t);
        let f0 = FlowVec::from_values(&inst, vec![f1, 1.0 - f1]).unwrap();
        let config = SimulationConfig::new(t, 200).with_flows();
        let traj = run(&inst, &BestResponse::new(), &f0, &config);
        let report = population_regret(&inst, &traj);
        // Any fixed path averages lower latency than the flip-flopping
        // population: positive regret, bounded away from 0.
        assert!(report.max_regret() > 0.05, "regret {:?}", report.regret);
    }

    #[test]
    fn regret_is_nonnegative_by_construction() {
        // Best fixed path in hindsight can only beat the average:
        // L_i is a convex combination of path latencies at each time.
        let inst = builders::braess();
        let policy = uniform_linear(&inst);
        let config = SimulationConfig::new(0.2, 100).with_flows();
        let traj = run(&inst, &policy, &FlowVec::concentrated(&inst), &config);
        let report = population_regret(&inst, &traj);
        for r in &report.regret {
            assert!(*r >= -1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "recorded flows")]
    fn regret_requires_flows() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let traj = run(
            &inst,
            &policy,
            &FlowVec::uniform(&inst),
            &SimulationConfig::new(0.5, 5),
        );
        let _ = population_regret(&inst, &traj);
    }
}
