//! The per-phase sampling cache shared by both agent simulators.
//!
//! The board is frozen within a phase, so every activation of a
//! commodity draws from the *same* sampling distribution. Instead of
//! refilling a weight buffer per activation (O(n) each), the cumulative
//! weights are built once per board post and each activation samples by
//! binary search — O(log n), the agent-side analogue of the engine's
//! matrix-free phase rates.
//!
//! The cache separates *binding* (sizing the buffers for an instance,
//! the only operation allowed to allocate) from *refilling* (updating
//! the weights from a freshly posted board, always allocation-free).
//! Earlier revisions resized on every rebuild, which re-allocated the
//! `cum`/`totals` buffers whenever the cache was re-bound to a larger
//! instance mid-run; the split makes the steady state provably
//! allocation-free (pinned by the pointer-stability regression test
//! below and by `crates/core/tests/zero_alloc.rs`).

use rand::rngs::StdRng;
use rand::Rng;

use wardrop_core::board::BulletinBoard;
use wardrop_core::sampling::SamplingRule;
use wardrop_net::instance::Instance;

/// Cumulative per-commodity sampling weights for a frozen board.
#[derive(Debug, Default)]
pub struct SamplingCache {
    /// Flat per-path cumulative weights, partial-summed within each
    /// commodity's range.
    cum: Vec<f64>,
    /// Per-commodity total weight (0 ⇒ degenerate, fall back to
    /// uniform).
    totals: Vec<f64>,
}

impl SamplingCache {
    /// Sizes the buffers for `instance`. Growing allocates (grow-only:
    /// shrinking re-binds keep their capacity); every later
    /// [`refill`](SamplingCache::refill) is allocation-free.
    pub fn bind(&mut self, instance: &Instance) {
        self.cum.resize(instance.num_paths(), 0.0);
        self.totals.resize(instance.num_commodities(), 0.0);
    }

    /// Rebuilds the cumulative weights from the freshly posted board.
    /// Allocation-free; [`bind`](SamplingCache::bind) must have sized
    /// the buffers for `instance` first.
    ///
    /// # Panics
    ///
    /// Panics if the cache is bound to a different instance shape.
    pub fn refill(
        &mut self,
        instance: &Instance,
        board: &BulletinBoard,
        sampling: &dyn SamplingRule,
    ) {
        assert_eq!(self.cum.len(), instance.num_paths(), "cache not bound");
        assert_eq!(self.totals.len(), instance.num_commodities());
        for i in 0..instance.num_commodities() {
            let range = instance.commodity_paths(i);
            let slice = &mut self.cum[range];
            sampling.fill_weights(instance, board, i, slice);
            let mut acc = 0.0;
            for w in slice.iter_mut() {
                acc += *w;
                *w = acc;
            }
            self.totals[i] = acc;
        }
    }

    /// Binds and refills in one call — the drop-in replacement for the
    /// old `rebuild` entry point.
    pub fn rebuild(
        &mut self,
        instance: &Instance,
        board: &BulletinBoard,
        sampling: &dyn SamplingRule,
    ) {
        self.bind(instance);
        self.refill(instance, board, sampling);
    }

    /// Draws a local path index for `commodity` (uniform fallback when
    /// the distribution is degenerate, e.g. proportional sampling with
    /// all board flow extinct).
    pub fn sample(&self, instance: &Instance, commodity: usize, rng: &mut StdRng) -> usize {
        let range = instance.commodity_paths(commodity);
        let total = self.totals[commodity];
        if total <= 0.0 {
            return rng.random_range(0..range.len());
        }
        let u = rng.random_range(0.0..total);
        let slice = &self.cum[range];
        slice.partition_point(|&c| c <= u).min(slice.len() - 1)
    }

    /// The total sampling weight of `commodity` (0 ⇒ degenerate).
    #[inline]
    pub fn total(&self, commodity: usize) -> f64 {
        self.totals[commodity]
    }

    /// The raw (non-cumulative) weight of local path `offset` within
    /// `commodity` — recovered from cumulative differences, so no extra
    /// per-path buffer is carried.
    #[inline]
    pub fn weight(&self, instance: &Instance, commodity: usize, offset: usize) -> f64 {
        let range = instance.commodity_paths(commodity);
        let slice = &self.cum[range];
        let prev = if offset == 0 { 0.0 } else { slice[offset - 1] };
        (slice[offset] - prev).max(0.0)
    }

    /// Bytes held by the cache buffers (capacity, not length).
    pub fn state_bytes(&self) -> usize {
        self.cum.capacity() * std::mem::size_of::<f64>()
            + self.totals.capacity() * std::mem::size_of::<f64>()
    }

    #[cfg(test)]
    pub(crate) fn force_degenerate(&mut self, commodity: usize) {
        self.totals[commodity] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wardrop_net::builders;
    use wardrop_net::flow::FlowVec;

    #[test]
    fn cached_sampling_respects_board_weights() {
        // Proportional sampling: the cumulative cache must reproduce
        // the board flow distribution, skipping the zero-flow path.
        let inst = builders::parallel_links(vec![
            wardrop_net::Latency::Constant(1.0),
            wardrop_net::Latency::Constant(1.0),
            wardrop_net::Latency::Constant(1.0),
        ]);
        let f = FlowVec::from_values(&inst, vec![0.2, 0.0, 0.8]).unwrap();
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let mut cache = SamplingCache::default();
        cache.rebuild(&inst, &board, &wardrop_core::sampling::Proportional);
        let mut rng = StdRng::seed_from_u64(99);
        let mut hits = [0u32; 3];
        for _ in 0..30_000 {
            hits[cache.sample(&inst, 0, &mut rng)] += 1;
        }
        assert_eq!(hits[1], 0);
        let frac = hits[2] as f64 / 30_000.0;
        assert!((frac - 0.8).abs() < 0.02, "frac {frac}");
        // Raw weights recovered from the cumulative buffer.
        assert!((cache.weight(&inst, 0, 0) - 0.2).abs() < 1e-12);
        assert!((cache.weight(&inst, 0, 1)).abs() < 1e-12);
        assert!((cache.weight(&inst, 0, 2) - 0.8).abs() < 1e-12);
        assert!((cache.total(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cache_falls_back_to_uniform() {
        let inst = builders::pigou();
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let mut cache = SamplingCache::default();
        cache.rebuild(&inst, &board, &wardrop_core::sampling::Uniform);
        cache.force_degenerate(0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits = [0u32; 2];
        for _ in 0..10_000 {
            hits[cache.sample(&inst, 0, &mut rng)] += 1;
        }
        assert!(hits[0] > 4_000 && hits[1] > 4_000, "{hits:?}");
    }

    #[test]
    fn refill_reuses_buffers_across_posts_and_rebinds() {
        // Regression test for the refill reallocation: once bound to
        // the largest instance a run will see, neither later posts nor
        // re-binds to smaller (or back to equal) instances may move the
        // buffers.
        let big = builders::grid_network(4, 4, 7);
        let small = builders::braess();
        let mut cache = SamplingCache::default();
        cache.bind(&big);
        let ptr_cum = cache.cum.as_ptr();
        let ptr_totals = cache.totals.as_ptr();
        let cap_cum = cache.cum.capacity();

        // Many posts against the same binding: pure refills.
        let f = FlowVec::uniform(&big);
        let mut board = BulletinBoard::for_instance(&big);
        for phase in 0..32 {
            board.post_into(&big, &f, phase as f64);
            cache.refill(&big, &board, &wardrop_core::sampling::Proportional);
            assert_eq!(cache.cum.as_ptr(), ptr_cum, "refill moved cum");
            assert_eq!(cache.totals.as_ptr(), ptr_totals, "refill moved totals");
        }

        // Rebind big → small → big: capacity (and the allocation) is
        // retained the whole way.
        let f_small = FlowVec::uniform(&small);
        let board_small = BulletinBoard::post(&small, &f_small, 0.0);
        cache.rebuild(&small, &board_small, &wardrop_core::sampling::Uniform);
        assert_eq!(cache.cum.as_ptr(), ptr_cum, "shrinking rebind moved cum");
        assert_eq!(
            cache.cum.capacity(),
            cap_cum,
            "shrinking rebind dropped capacity"
        );
        cache.bind(&big);
        assert_eq!(cache.cum.as_ptr(), ptr_cum, "re-growing rebind moved cum");

        board.post_into(&big, &f, 99.0);
        cache.refill(&big, &board, &wardrop_core::sampling::Proportional);
        assert_eq!(cache.cum.as_ptr(), ptr_cum);
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn refill_requires_binding() {
        let inst = builders::pigou();
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let mut cache = SamplingCache::default();
        cache.refill(&inst, &board, &wardrop_core::sampling::Uniform);
    }
}
