//! A hierarchical calendar queue for the open-system simulator.
//!
//! The classic pending-event set of incremental-time discrete-event
//! engines (Brown 1988): a bucketed timing wheel covering the near
//! future, with an overflow ladder (a binary heap) for events beyond
//! the wheel's span. Scheduling and popping an event that lands on the
//! wheel is O(1) amortised — a flat array index plus a scan of one
//! small bucket — against the O(log n) of a pure heap; far-future
//! events pay one heap push and are migrated onto the wheel lazily as
//! the cursor approaches them.
//!
//! Buckets retain their capacity across revolutions, so the steady
//! state (schedule/pop cycles within the warmed-up span) is
//! allocation-free, exactly like the engine's `EvalWorkspace` buffers —
//! pinned by `crates/core/tests/zero_alloc.rs`.
//!
//! Cancellation is lazy: events carry a `gen` stamp where the producer
//! needs invalidation (Poisson clocks re-drawn after a rate change use
//! the memorylessness of the exponential), and stale stamps are simply
//! discarded on pop. The calendar itself never searches for events.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Typed events of the open-system simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenEventKind {
    /// The bulletin board is refreshed (and the pending inter-post
    /// interval of batched activations is flushed).
    BoardPost,
    /// One agent arrives (commodity picked by superposition at
    /// processing time).
    Arrival,
    /// One agent departs. Carries the generation of the aggregate
    /// departure clock: the clock is re-drawn whenever the population
    /// size changes (memorylessness), and stale generations are
    /// discarded on pop.
    Departure {
        /// Generation stamp of the departure clock.
        gen: u32,
    },
    /// M/M/c queue-delay state is refreshed from current occupancy.
    QueueRefresh,
    /// End of the simulation horizon.
    Horizon,
}

/// A scheduled event: time, tie-breaking sequence number, kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalendarEvent {
    /// When the event fires (finite, non-negative).
    pub time: f64,
    /// Insertion sequence (ties fire in schedule order).
    pub seq: u64,
    /// What happens.
    pub kind: OpenEventKind,
}

impl Eq for CalendarEvent {}

impl PartialOrd for CalendarEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CalendarEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Times are finite by the schedule() contract.
        self.time
            .partial_cmp(&other.time)
            .expect("calendar times are finite")
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// The bucketed timing wheel with overflow ladder.
#[derive(Debug)]
pub struct Calendar {
    /// Width of one bucket in simulation time.
    width: f64,
    /// Ring of near-future buckets (power-of-two length).
    buckets: Vec<Vec<CalendarEvent>>,
    /// `buckets.len() - 1`, for masking absolute bucket indices.
    mask: usize,
    /// Absolute index of the bucket under the cursor (monotone).
    cursor: u64,
    /// Events on the wheel (excludes the overflow ladder).
    near_len: usize,
    /// Far-future events, min-heap by (time, seq).
    overflow: BinaryHeap<Reverse<CalendarEvent>>,
    /// Next tie-breaking sequence number.
    next_seq: u64,
}

impl Calendar {
    /// Creates a calendar whose wheel covers `num_buckets × width` of
    /// simulation time ahead of the cursor. `num_buckets` is rounded up
    /// to a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not finite and positive or `num_buckets`
    /// is zero.
    pub fn new(width: f64, num_buckets: usize) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "bucket width must be positive"
        );
        assert!(num_buckets > 0, "need at least one bucket");
        let n = num_buckets.next_power_of_two();
        Calendar {
            width,
            buckets: (0..n).map(|_| Vec::new()).collect(),
            mask: n - 1,
            cursor: 0,
            near_len: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Reserves capacity for at least `per_bucket` events in every
    /// wheel bucket (and as many in the overflow ladder), so a caller
    /// that can bound its steady-state event density — e.g. from its
    /// Poisson clock rates — makes `schedule` allocation-free instead
    /// of merely amortised-O(1): without a reservation, the per-bucket
    /// high-water mark keeps setting new records at the (slowly
    /// shrinking but never zero) rate of Poisson extreme values.
    pub fn reserve_per_bucket(&mut self, per_bucket: usize) {
        for bucket in &mut self.buckets {
            if bucket.capacity() < per_bucket {
                bucket.reserve_exact(per_bucket - bucket.len());
            }
        }
        if self.overflow.capacity() < per_bucket {
            self.overflow.reserve(per_bucket - self.overflow.len());
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.near_len + self.overflow.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `kind` at `time`, returning the event's sequence
    /// number. Events scheduled at or before the cursor's bucket fire
    /// from the current bucket (i.e. "as soon as possible", in time
    /// then insertion order) — the simulator never schedules into the
    /// past, but floating-point boundaries may land exactly on it.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite or is negative.
    pub fn schedule(&mut self, time: f64, kind: OpenEventKind) -> u64 {
        assert!(
            time.is_finite() && time >= 0.0,
            "time must be finite and ≥ 0"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = CalendarEvent { time, seq, kind };
        let abs = ((time / self.width) as u64).max(self.cursor);
        if abs < self.cursor + self.buckets.len() as u64 {
            self.buckets[(abs as usize) & self.mask].push(ev);
            self.near_len += 1;
        } else {
            self.overflow.push(Reverse(ev));
        }
        seq
    }

    /// Pops the earliest pending event (time order, ties by insertion
    /// sequence).
    pub fn pop(&mut self) -> Option<CalendarEvent> {
        if self.is_empty() {
            return None;
        }
        loop {
            // Migrate overflow events that now fit on the wheel.
            let horizon = (self.cursor + self.buckets.len() as u64) as f64 * self.width;
            while let Some(Reverse(ev)) = self.overflow.peek() {
                if ev.time >= horizon {
                    break;
                }
                let ev = self.overflow.pop().expect("peeked").0;
                let abs = ((ev.time / self.width) as u64).max(self.cursor);
                self.buckets[(abs as usize) & self.mask].push(ev);
                self.near_len += 1;
            }
            if self.near_len == 0 {
                // Wheel empty but overflow pending beyond the span:
                // fast-forward the cursor to the overflow minimum
                // instead of spinning through empty revolutions.
                let min_t = self.overflow.peek().expect("len > 0").0.time;
                self.cursor = ((min_t / self.width) as u64).max(self.cursor);
                continue;
            }
            // Scan the cursor bucket for events of the current lap
            // (time before the bucket's end); later laps stay put.
            let end = (self.cursor + 1) as f64 * self.width;
            let bucket = &mut self.buckets[(self.cursor as usize) & self.mask];
            let mut best: Option<usize> = None;
            for (i, ev) in bucket.iter().enumerate() {
                if ev.time < end
                    && best.is_none_or(|b| (ev.time, ev.seq) < (bucket[b].time, bucket[b].seq))
                {
                    best = Some(i);
                }
            }
            if let Some(i) = best {
                self.near_len -= 1;
                return Some(bucket.swap_remove(i));
            }
            self.cursor += 1;
        }
    }

    /// Bytes held by the calendar's buffers (capacities, not lengths).
    pub fn state_bytes(&self) -> usize {
        let per_event = std::mem::size_of::<CalendarEvent>();
        self.buckets
            .iter()
            .map(|b| b.capacity() * per_event)
            .sum::<usize>()
            + self.buckets.capacity() * std::mem::size_of::<Vec<CalendarEvent>>()
            + self.overflow.capacity() * per_event
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn drain(cal: &mut Calendar) -> Vec<CalendarEvent> {
        let mut out = Vec::new();
        while let Some(ev) = cal.pop() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn pops_in_time_order_across_wheel_and_overflow() {
        // Random times spanning many revolutions and the overflow
        // ladder; the calendar must agree with a sorted reference.
        let mut rng = StdRng::seed_from_u64(42);
        let mut cal = Calendar::new(0.25, 8); // span = 2.0
        let mut reference = Vec::new();
        for _ in 0..5_000 {
            let t: f64 = rng.random_range(0.0..40.0);
            let seq = cal.schedule(t, OpenEventKind::Arrival);
            reference.push((t, seq));
        }
        reference.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let popped = drain(&mut cal);
        assert_eq!(popped.len(), reference.len());
        for (ev, (t, seq)) in popped.iter().zip(&reference) {
            assert_eq!((ev.time, ev.seq), (*t, *seq));
        }
        assert!(cal.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stay_ordered() {
        // The DES pattern: pop one, schedule a successor slightly
        // later. Times must come out monotone.
        let mut rng = StdRng::seed_from_u64(7);
        let mut cal = Calendar::new(0.1, 16);
        for _ in 0..8 {
            cal.schedule(rng.random_range(0.0..0.5), OpenEventKind::Arrival);
        }
        let mut last = 0.0;
        for _ in 0..20_000 {
            let ev = cal.pop().expect("chain never empties");
            assert!(ev.time >= last, "{} < {last}", ev.time);
            last = ev.time;
            cal.schedule(ev.time + rng.random_range(0.0..1.5), OpenEventKind::Arrival);
        }
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut cal = Calendar::new(1.0, 4);
        cal.schedule(3.0, OpenEventKind::BoardPost);
        cal.schedule(3.0, OpenEventKind::Arrival);
        cal.schedule(3.0, OpenEventKind::Horizon);
        let popped = drain(&mut cal);
        assert_eq!(popped[0].kind, OpenEventKind::BoardPost);
        assert_eq!(popped[1].kind, OpenEventKind::Arrival);
        assert_eq!(popped[2].kind, OpenEventKind::Horizon);
    }

    #[test]
    fn past_times_fire_immediately() {
        let mut cal = Calendar::new(0.5, 4);
        // Advance the cursor past t = 2.
        cal.schedule(2.3, OpenEventKind::BoardPost);
        assert_eq!(cal.pop().unwrap().time, 2.3);
        // A boundary-rounding "past" event lands in the cursor bucket.
        cal.schedule(1.0, OpenEventKind::Arrival);
        cal.schedule(2.4, OpenEventKind::Horizon);
        let popped = drain(&mut cal);
        assert_eq!(popped[0].kind, OpenEventKind::Arrival);
        assert_eq!(popped[1].kind, OpenEventKind::Horizon);
    }

    #[test]
    fn steady_state_reuses_bucket_capacity() {
        // After a warm-up revolution, the schedule/pop cycle must not
        // grow any buffer: capacities before and after agree. (The
        // allocation count itself is pinned process-wide in
        // crates/core/tests/zero_alloc.rs.)
        let mut rng = StdRng::seed_from_u64(3);
        let mut cal = Calendar::new(0.2, 8);
        for _ in 0..4 {
            cal.schedule(rng.random_range(0.0..1.6), OpenEventKind::Arrival);
        }
        for _ in 0..2_000 {
            let ev = cal.pop().unwrap();
            cal.schedule(ev.time + rng.random_range(0.0..1.0), OpenEventKind::Arrival);
        }
        let bytes = cal.state_bytes();
        for _ in 0..10_000 {
            let ev = cal.pop().unwrap();
            cal.schedule(ev.time + rng.random_range(0.0..1.0), OpenEventKind::Arrival);
        }
        assert_eq!(cal.state_bytes(), bytes, "steady state grew a buffer");
    }

    #[test]
    fn len_tracks_wheel_and_overflow() {
        let mut cal = Calendar::new(1.0, 2);
        assert!(cal.is_empty());
        cal.schedule(0.5, OpenEventKind::Arrival); // wheel
        cal.schedule(100.0, OpenEventKind::Horizon); // overflow
        assert_eq!(cal.len(), 2);
        cal.pop();
        assert_eq!(cal.len(), 1);
        cal.pop();
        assert!(cal.is_empty());
        assert!(cal.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut cal = Calendar::new(1.0, 2);
        cal.schedule(f64::NAN, OpenEventKind::Arrival);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_width() {
        let _ = Calendar::new(0.0, 4);
    }
}
