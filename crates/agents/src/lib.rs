//! # wardrop-agents
//!
//! A finite-population discrete-event simulator for *Adaptive routing
//! with stale information* (Fischer & Vöcking, PODC 2005 / TCS 2009).
//!
//! The paper analyses the fluid limit of infinitely many infinitesimal
//! agents; this crate simulates the underlying stochastic process
//! directly — `N` agents with rate-1 Poisson clocks revising their
//! paths against a bulletin board refreshed every `T` — and emits the
//! same [`Trajectory`](wardrop_core::trajectory::Trajectory) type as
//! the fluid engine so every analysis tool applies to both. As
//! `N → ∞` the empirical flows converge to the ODE solution, which is
//! what justifies the fluid model (verified in the integration tests
//! and experiment E6).
//!
//! Two simulators share the crate:
//!
//! * [`sim`] — the phase-synchronous reference: one event per agent
//!   activation, O(N) events per phase. Exact, but 10⁷ agents are out
//!   of reach.
//! * [`open_system`] — the event-calendar core: Poisson
//!   arrivals/departures, batched (τ-leaped) activation draws from
//!   per-path `u64` counters, and optional M/M/c queueing delays —
//!   O(paths) state and per-interval work, independent of `N`. A
//!   closed configuration reproduces [`sim`] within binomial noise.
//!
//! # Examples
//!
//! ```
//! use wardrop_net::{builders, flow::FlowVec};
//! use wardrop_agents::sim::{run_agents, AgentPolicy, AgentSimConfig};
//!
//! let inst = builders::pigou();
//! let config = AgentSimConfig::new(500, 0.5, 50, 42);
//! let traj = run_agents(
//!     &inst,
//!     &AgentPolicy::uniform_linear(&inst),
//!     &FlowVec::uniform(&inst),
//!     &config,
//! );
//! assert_eq!(traj.len(), 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod calendar;
pub mod ensemble;
pub mod events;
pub mod open_system;
pub mod population;
pub mod sim;

pub use cache::SamplingCache;
pub use calendar::{Calendar, CalendarEvent, OpenEventKind};
pub use ensemble::{Ensemble, Summary};
pub use open_system::{
    run_open_ensemble, run_open_system, OpenStats, OpenSystem, OpenSystemConfig, OpenSystemRun,
    QueueingModel,
};
pub use population::Population;
pub use sim::{run_agents, AgentPolicy, AgentSimConfig};
