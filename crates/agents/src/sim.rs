//! The finite-population discrete-event simulator.
//!
//! This realises the paper's *actual* process — `N` agents, each with a
//! rate-1 Poisson activation clock, revising paths against a bulletin
//! board refreshed every `T` — rather than its fluid limit. The
//! superposition property lets the simulator draw one global
//! exponential clock of rate `N` and pick the activated agent uniformly
//! (i.e. a commodity proportionally to its agent count, then a path
//! proportionally to its count within the commodity).
//!
//! The simulator emits the same [`Trajectory`] type as the fluid
//! engine, so all analysis tooling (bad-phase counts, Lemma 4 checks,
//! orbit detection) applies unchanged; `agents → ∞` recovers the ODE
//! (tested in the integration suite).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use wardrop_core::board::BulletinBoard;
use wardrop_core::engine::Parallelism;
use wardrop_core::fault::{FaultPlan, FaultState};
use wardrop_core::migration::MigrationRule;
use wardrop_core::sampling::SamplingRule;
use wardrop_core::trajectory::{PhaseRecord, Trajectory};
use wardrop_net::eval::EvalWorkspace;
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;
use wardrop_net::scenario::Scenario;

use crate::cache::SamplingCache;
use crate::events::{EventKind, EventQueue, Time};
use crate::population::Population;

/// How an activated agent revises its path.
#[derive(Debug)]
pub enum AgentPolicy {
    /// Two-step smooth policy: sample with `sampling`, migrate with
    /// probability given by `migration` (both reading the board).
    Smooth {
        /// The sampling rule σ.
        sampling: Box<dyn SamplingRule>,
        /// The migration rule µ.
        migration: Box<dyn MigrationRule>,
    },
    /// Jump to a board-minimal path unconditionally.
    BestResponse,
}

impl AgentPolicy {
    /// The replicator policy (proportional sampling + linear
    /// migration) for `instance`.
    pub fn replicator(instance: &Instance) -> Self {
        AgentPolicy::Smooth {
            sampling: Box::new(wardrop_core::sampling::Proportional),
            migration: Box::new(wardrop_core::migration::Linear::new(
                instance.latency_upper_bound().max(f64::MIN_POSITIVE),
            )),
        }
    }

    /// Uniform sampling + linear migration for `instance`.
    pub fn uniform_linear(instance: &Instance) -> Self {
        AgentPolicy::Smooth {
            sampling: Box::new(wardrop_core::sampling::Uniform),
            migration: Box::new(wardrop_core::migration::Linear::new(
                instance.latency_upper_bound().max(f64::MIN_POSITIVE),
            )),
        }
    }

    /// Name for reports.
    pub fn name(&self) -> String {
        match self {
            AgentPolicy::Smooth {
                sampling,
                migration,
            } => format!("agents:{}+{}", sampling.name(), migration.name()),
            AgentPolicy::BestResponse => "agents:best-response".to_string(),
        }
    }
}

/// Configuration of a finite-population run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentSimConfig {
    /// Number of agents `N`.
    pub num_agents: u64,
    /// Bulletin-board update period `T`.
    pub update_period: f64,
    /// Number of board phases to simulate.
    pub num_phases: usize,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
    /// Record empirical flows at phase starts.
    pub record_flows: bool,
    /// `δ` thresholds for unsatisfied-volume columns.
    pub deltas: Vec<f64>,
    /// Execution mode of the per-phase metric evaluation (the
    /// agent-activation event loop itself is inherently sequential —
    /// one RNG stream). Serial by default; the `WARDROP_THREADS`
    /// environment variable overrides it, exactly as for the fluid
    /// engine.
    #[serde(default)]
    pub parallelism: Parallelism,
    /// Optional bulletin-board fault plan, applied at post time exactly
    /// as in the fluid engines: agents keep sampling the board, it just
    /// may hold degraded information.
    #[serde(default)]
    pub faults: Option<FaultPlan>,
}

impl AgentSimConfig {
    /// A default configuration.
    pub fn new(num_agents: u64, update_period: f64, num_phases: usize, seed: u64) -> Self {
        AgentSimConfig {
            num_agents,
            update_period,
            num_phases,
            seed,
            record_flows: false,
            deltas: vec![0.05],
            parallelism: Parallelism::Serial,
            faults: None,
        }
    }

    /// Attaches a bulletin-board fault plan (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the execution mode of the per-phase metric evaluation
    /// (builder style).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Enables flow recording (builder style).
    pub fn with_flows(mut self) -> Self {
        self.record_flows = true;
        self
    }

    /// Sets the `δ` thresholds (builder style).
    pub fn with_deltas(mut self, deltas: Vec<f64>) -> Self {
        self.deltas = deltas;
        self
    }
}

/// Runs the finite-population simulation from the flow profile `f0`.
///
/// Returns a [`Trajectory`] with one record per board phase, computed
/// from the empirical flow at phase boundaries.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero agents, non-positive
/// period) or `f0` is infeasible.
pub fn run_agents(
    instance: &Instance,
    policy: &AgentPolicy,
    f0: &FlowVec,
    config: &AgentSimConfig,
) -> Trajectory {
    run_agents_scenario(instance, policy, f0, config, &Scenario::default())
        .expect("static agent runs cannot fail event application")
}

/// Runs the finite-population simulation through a non-stationary
/// [`Scenario`]: events fire at board updates, mutating a private copy
/// of the instance, and demand events additionally *churn the
/// population* — agents arrive on surging commodities and depart from
/// shrinking ones ([`Population::reapportion`]), proportionally to
/// current path occupancy. [`PhaseRecord::epoch`] marks the segments,
/// exactly as in the fluid engine, so all tracking analysis applies to
/// finite populations unchanged.
///
/// # Errors
///
/// Propagates the first failing event application.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero agents, non-positive
/// period) or `f0` is infeasible for the *initial* instance.
pub fn run_agents_scenario(
    instance: &Instance,
    policy: &AgentPolicy,
    f0: &FlowVec,
    config: &AgentSimConfig,
    scenario: &Scenario,
) -> Result<Trajectory, wardrop_net::NetError> {
    let pool = config.parallelism.build_pool();
    run_agents_scenario_pooled(instance, policy, f0, config, scenario, pool.as_deref())
}

/// As [`run_agents_scenario`], with an explicit worker pool instead of
/// resolving `config.parallelism` (and the `WARDROP_THREADS`
/// override). [`crate::ensemble::Ensemble::run_with`] passes `None` so
/// its inner runs stay genuinely serial — lane counts never multiply
/// even under the environment override.
pub fn run_agents_scenario_pooled(
    instance: &Instance,
    policy: &AgentPolicy,
    f0: &FlowVec,
    config: &AgentSimConfig,
    scenario: &Scenario,
    pool: Option<&wardrop_core::WorkerPool>,
) -> Result<Trajectory, wardrop_net::NetError> {
    assert!(config.num_agents > 0, "need at least one agent");
    assert!(
        config.update_period.is_finite() && config.update_period > 0.0,
        "update period must be positive"
    );
    assert!(
        f0.is_feasible(instance, 1e-6),
        "initial flow must be feasible"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut instance = instance.clone();
    let instance = &mut instance;
    let mut pop = Population::apportion(instance, config.num_agents, f0);
    let n = pop.num_agents();
    let t_period = config.update_period;
    let horizon = t_period * config.num_phases as f64;
    let events = scenario.events();
    let mut next_event = 0usize;
    let mut epoch = 0usize;

    let mut queue = EventQueue::new();
    queue.schedule(Time::new(0.0), EventKind::BoardUpdate);
    let first = rand_exp(&mut rng, n as f64);
    if first < horizon {
        queue.schedule(Time::new(first), EventKind::AgentActivation);
    }

    let mut phases: Vec<PhaseRecord> = Vec::with_capacity(config.num_phases);
    let mut flows = Vec::new();
    // Per-phase metrics run through one fused evaluation workspace
    // (optionally pooled) instead of the naive per-metric chain; the
    // board is posted from the same evaluation.
    let mut eval = EvalWorkspace::new(instance);
    let mut board = BulletinBoard::for_instance(instance);
    let mut fault = match &config.faults {
        Some(plan) => Some(FaultState::new(plan.clone(), instance)?),
        None => None,
    };
    let mut board_posted = false;
    // Bound once for the run: scenario events mutate demands and
    // latencies but never the path structure, so every later post is a
    // pure allocation-free refill.
    let mut sampling_cache = SamplingCache::default();
    sampling_cache.bind(instance);
    let mut open_phase: Option<OpenPhase> = None;
    let mut phase_index = 0usize;

    while let Some(ev) = queue.pop() {
        let now = ev.time.seconds();
        if now > horizon + 1e-12 {
            break;
        }
        match ev.kind {
            EventKind::BoardUpdate => {
                let flow = pop.to_flow(instance);
                // Close the previous phase: only Φ and the virtual
                // gain are needed, so the edge-only evaluation skips
                // the path gather and the min/avg pass.
                let mut edges_current = false;
                if let Some(open) = open_phase.take() {
                    eval.evaluate_edges_with(instance, &flow, pool);
                    edges_current = true;
                    phases.push(open.close_from(&eval, t_period));
                }
                if phase_index >= config.num_phases {
                    break;
                }
                // Fire scenario events due at this phase: mutate the
                // instance and churn the population to the new demands.
                let mut churned = false;
                while next_event < events.len() && events[next_event].at_phase <= phase_index {
                    for action in &events[next_event].actions {
                        action.apply(instance)?;
                    }
                    pop.reapportion(instance);
                    epoch += 1;
                    next_event += 1;
                    churned = true;
                }
                let flow = if churned { pop.to_flow(instance) } else { flow };
                // Open the next phase from one full evaluation —
                // completing the close's edge pass when the flow is
                // unchanged, re-evaluating from scratch after churn.
                if churned || !edges_current {
                    eval.evaluate_with(instance, &flow, pool);
                } else {
                    eval.finish_paths_with(instance, &flow, pool);
                }
                if config.record_flows {
                    flows.push(flow.clone());
                }
                let unsatisfied = config
                    .deltas
                    .iter()
                    .map(|d| eval.unsatisfied_volume(instance, &flow, *d))
                    .collect();
                let weakly_unsatisfied = config
                    .deltas
                    .iter()
                    .map(|d| eval.weakly_unsatisfied_volume(instance, &flow, *d))
                    .collect();
                open_phase = Some(OpenPhase {
                    index: phase_index,
                    epoch,
                    potential_start: eval.potential(),
                    avg_latency_start: eval.avg_latency(),
                    max_regret_start: eval.max_regret(instance, &flow, 1e-12),
                    start_edge_flows: eval.edge_flows().to_vec(),
                    start_edge_latencies: eval.edge_latencies().to_vec(),
                    unsatisfied,
                    weakly_unsatisfied,
                });
                match fault.as_mut() {
                    Some(state) => state.post(&mut board, instance, &eval, &flow, phase_index, now),
                    None => board.post_from_eval(&eval, &flow, now),
                }
                board_posted = true;
                if let AgentPolicy::Smooth { sampling, .. } = policy {
                    sampling_cache.refill(instance, &board, sampling.as_ref());
                }
                phase_index += 1;
                queue.schedule(
                    Time::new(phase_index as f64 * t_period),
                    EventKind::BoardUpdate,
                );
            }
            EventKind::AgentActivation => {
                assert!(board_posted, "board posted at t = 0");
                activate_one(
                    instance,
                    policy,
                    &board,
                    &sampling_cache,
                    &mut pop,
                    &mut rng,
                );
                let next = now + rand_exp(&mut rng, n as f64);
                if next <= horizon + 1e-12 {
                    queue.schedule(Time::new(next), EventKind::AgentActivation);
                }
            }
            EventKind::Horizon => break,
        }
    }

    // Close a dangling phase (horizon reached between board updates).
    if let Some(open) = open_phase.take() {
        let flow = pop.to_flow(instance);
        eval.evaluate_edges_with(instance, &flow, pool);
        phases.push(open.close_from(&eval, t_period));
    }

    Ok(Trajectory {
        update_period: t_period,
        deltas: config.deltas.clone(),
        phases,
        flows,
        flow_stride: 1,
        final_flow: pop.to_flow(instance),
        dynamics: policy.name(),
    })
}

/// Phase-start measurements held until the phase's closing board
/// update supplies the end flow. The start flow itself is not
/// retained — the virtual gain only needs the edge snapshot
/// `(f̂_e, ℓ_e(f̂_e))`.
struct OpenPhase {
    index: usize,
    epoch: usize,
    start_edge_flows: Vec<f64>,
    start_edge_latencies: Vec<f64>,
    potential_start: f64,
    avg_latency_start: f64,
    max_regret_start: f64,
    unsatisfied: Vec<f64>,
    weakly_unsatisfied: Vec<f64>,
}

impl OpenPhase {
    /// Closes the phase from a workspace holding (at least) the
    /// edge-level evaluation of the end flow.
    fn close_from(self, eval: &EvalWorkspace, t_period: f64) -> PhaseRecord {
        PhaseRecord {
            index: self.index,
            epoch: self.epoch,
            start_time: self.index as f64 * t_period,
            potential_start: self.potential_start,
            potential_end: eval.potential(),
            virtual_gain: eval
                .virtual_gain_from(&self.start_edge_flows, &self.start_edge_latencies),
            avg_latency_start: self.avg_latency_start,
            max_regret_start: self.max_regret_start,
            unsatisfied: self.unsatisfied,
            weakly_unsatisfied: self.weakly_unsatisfied,
        }
    }
}

/// Processes one agent activation against the frozen board.
fn activate_one(
    instance: &Instance,
    policy: &AgentPolicy,
    board: &BulletinBoard,
    sampling_cache: &SamplingCache,
    pop: &mut Population,
    rng: &mut StdRng,
) {
    // Pick the activated agent: commodity ∝ agent count, then path ∝
    // count within the commodity (exchangeability).
    let total = pop.num_agents();
    let mut pick = rng.random_range(0..total);
    let mut commodity = 0;
    while pick >= pop.commodity_total(commodity) {
        pick -= pop.commodity_total(commodity);
        commodity += 1;
    }
    let range = instance.commodity_paths(commodity);
    let mut from = range.start;
    for p in range.clone() {
        let c = pop.count(p);
        if pick < c {
            from = p;
            break;
        }
        pick -= c;
    }

    match policy {
        AgentPolicy::Smooth { migration, .. } => {
            let to = range.start + sampling_cache.sample(instance, commodity, rng);
            if to == from {
                return;
            }
            let l_from = board.path_latencies()[from];
            let l_to = board.path_latencies()[to];
            let p_migrate = migration.probability(l_from, l_to);
            if p_migrate > 0.0 && rng.random_range(0.0..1.0) < p_migrate {
                pop.migrate(instance, from, to);
            }
        }
        AgentPolicy::BestResponse => {
            let to = board.best_reply(instance, commodity);
            if to != from {
                pop.migrate(instance, from, to);
            }
        }
    }
}

/// Draws an Exp(rate) variate by inverse transform.
pub(crate) fn rand_exp(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use wardrop_net::builders;

    #[test]
    fn deterministic_per_seed() {
        let inst = builders::pigou();
        let f0 = FlowVec::uniform(&inst);
        let config = AgentSimConfig::new(100, 0.5, 20, 42).with_flows();
        let a = run_agents(&inst, &AgentPolicy::uniform_linear(&inst), &f0, &config);
        let b = run_agents(&inst, &AgentPolicy::uniform_linear(&inst), &f0, &config);
        assert_eq!(a.final_flow, b.final_flow);
        assert_eq!(a.phases.len(), b.phases.len());
    }

    #[test]
    fn different_seeds_differ() {
        let inst = builders::pigou();
        let f0 = FlowVec::uniform(&inst);
        let c1 = AgentSimConfig::new(500, 0.5, 20, 1);
        let c2 = AgentSimConfig::new(500, 0.5, 20, 2);
        let a = run_agents(&inst, &AgentPolicy::uniform_linear(&inst), &f0, &c1);
        let b = run_agents(&inst, &AgentPolicy::uniform_linear(&inst), &f0, &c2);
        assert_ne!(a.final_flow, b.final_flow);
    }

    #[test]
    fn trivial_fault_plan_is_identical_and_real_faults_perturb() {
        let inst = builders::braess();
        let f0 = FlowVec::uniform(&inst);
        let policy = AgentPolicy::uniform_linear(&inst);
        let base = AgentSimConfig::new(400, 0.5, 30, 17).with_flows();
        let plain = run_agents(&inst, &policy, &f0, &base);
        // A zero-fault plan takes the clean post path every phase.
        let trivial = base.clone().with_faults(FaultPlan::new(5));
        let same = run_agents(&inst, &policy, &f0, &trivial);
        assert_eq!(plain.final_flow, same.final_flow);
        assert_eq!(plain.phases.len(), same.phases.len());
        // A board outage starves the agents of fresh information; the
        // sampled migrations diverge from the unfaulted run.
        let faulted = base
            .clone()
            .with_faults(FaultPlan::new(5).with_outage(2, 20).unwrap());
        let diff = run_agents(&inst, &policy, &f0, &faulted);
        assert_ne!(plain.final_flow, diff.final_flow);
    }

    #[test]
    fn runs_requested_number_of_phases() {
        let inst = builders::pigou();
        let f0 = FlowVec::uniform(&inst);
        let config = AgentSimConfig::new(50, 0.25, 40, 7);
        let traj = run_agents(&inst, &AgentPolicy::uniform_linear(&inst), &f0, &config);
        assert_eq!(traj.len(), 40);
        assert!((traj.update_period - 0.25).abs() < 1e-12);
    }

    #[test]
    fn agents_drift_toward_equilibrium_on_pigou() {
        let inst = builders::pigou();
        let f0 = FlowVec::uniform(&inst);
        let config = AgentSimConfig::new(2000, 0.5, 400, 3);
        let traj = run_agents(&inst, &AgentPolicy::uniform_linear(&inst), &f0, &config);
        // Equilibrium: everything on the x-link. With finite N there is
        // residual noise; require most of the mass.
        assert!(
            traj.final_flow.values()[0] > 0.9,
            "final flow {:?}",
            traj.final_flow.values()
        );
    }

    #[test]
    fn best_response_agents_oscillate() {
        let inst = builders::two_link_oscillator(4.0);
        let t = 0.5_f64;
        let f1 = wardrop_core::theory::oscillation::initial_flow(t);
        let f0 = FlowVec::from_values(&inst, vec![f1, 1.0 - f1]).unwrap();
        let config = AgentSimConfig::new(10_000, t, 60, 11).with_flows();
        let traj = run_agents(&inst, &AgentPolicy::BestResponse, &f0, &config);
        // The empirical flow keeps flipping around ½ in opposite phase.
        let f_even = traj.flows[40].values()[0];
        let f_odd = traj.flows[41].values()[0];
        assert!(
            (f_even - 0.5) * (f_odd - 0.5) < 0.0,
            "phases 40/41: {f_even} vs {f_odd}"
        );
    }

    #[test]
    fn feasibility_invariant_maintained() {
        let inst = builders::braess();
        let f0 = FlowVec::uniform(&inst);
        let config = AgentSimConfig::new(333, 0.3, 50, 5).with_flows();
        let traj = run_agents(&inst, &AgentPolicy::replicator(&inst), &f0, &config);
        for f in &traj.flows {
            assert!(f.is_feasible(&inst, 1e-9));
        }
        assert!(traj.final_flow.is_feasible(&inst, 1e-9));
    }

    #[test]
    fn multi_commodity_agents_stay_in_their_commodity() {
        let inst = builders::multi_commodity_grid(2, 2, 9);
        let f0 = FlowVec::uniform(&inst);
        let config = AgentSimConfig::new(200, 0.5, 30, 13);
        let traj = run_agents(&inst, &AgentPolicy::uniform_linear(&inst), &f0, &config);
        assert!(traj.final_flow.is_feasible(&inst, 1e-9));
    }

    #[test]
    fn scenario_churns_population_at_events() {
        let inst = builders::multi_commodity_grid(3, 3, 5);
        let f0 = FlowVec::uniform(&inst);
        let config = AgentSimConfig::new(1000, 0.25, 30, 7).with_flows();
        let scenario = Scenario::new("surge")
            .with_demand_schedule(0, &wardrop_net::DemandSchedule::step(0.5, 10, 0.8));
        let traj = run_agents_scenario(
            &inst,
            &AgentPolicy::uniform_linear(&inst),
            &f0,
            &config,
            &scenario,
        )
        .unwrap();
        assert_eq!(traj.len(), 30);
        assert_eq!(traj.num_epochs(), 2);
        assert_eq!(traj.phases[9].epoch, 0);
        assert_eq!(traj.phases[10].epoch, 1);
        // After the surge the recorded empirical flows route 0.8 of the
        // mass through commodity 0.
        let post = &traj.flows[15];
        let c0: f64 = post.values()[inst.commodity_paths(0)].iter().sum();
        assert!((c0 - 0.8).abs() < 1e-9, "commodity 0 routes {c0}");
        // Static wrapper still behaves.
        let static_traj = run_agents(&inst, &AgentPolicy::uniform_linear(&inst), &f0, &config);
        assert_eq!(static_traj.num_epochs(), 1);
    }

    #[test]
    fn scenario_event_errors_propagate() {
        let inst = builders::pigou();
        let f0 = FlowVec::uniform(&inst);
        let config = AgentSimConfig::new(100, 0.25, 10, 7);
        let bad = Scenario::new("bad").with_event(wardrop_net::Event::at(
            2,
            "impossible",
            wardrop_net::EventAction::SetDemand {
                commodity: 0,
                demand: 0.5,
            },
        ));
        let res = run_agents_scenario(
            &inst,
            &AgentPolicy::uniform_linear(&inst),
            &f0,
            &config,
            &bad,
        );
        assert!(res.is_err());
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn zero_agents_rejected() {
        let inst = builders::pigou();
        let f0 = FlowVec::uniform(&inst);
        let config = AgentSimConfig::new(0, 0.5, 10, 1);
        let _ = run_agents(&inst, &AgentPolicy::uniform_linear(&inst), &f0, &config);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rand_exp(&mut rng, 4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }
}
