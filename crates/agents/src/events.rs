//! Discrete-event machinery: totally-ordered simulation time and an
//! event queue.
//!
//! The finite-population simulator is a classic discrete-event system:
//! agent activations arrive as a superposed Poisson process (rate `N`
//! for `N` rate-1 agents) and the bulletin board refreshes every `T`
//! time units. Events are processed in timestamp order from a binary
//! heap; ties are broken by insertion sequence so runs are fully
//! deterministic for a fixed seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time: a finite, non-negative `f64` with total order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Time(f64);

impl Time {
    /// Creates a time point.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or not finite.
    pub fn new(t: f64) -> Self {
        assert!(t.is_finite() && t >= 0.0, "time must be finite and ≥ 0");
        Time(t)
    }

    /// The wrapped seconds value.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> Ordering {
        // Finite by construction: total order is safe.
        self.0.partial_cmp(&other.0).expect("times are finite")
    }
}

/// Kinds of events in the agent simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// One agent wakes up and revises its path (the agent is drawn
    /// uniformly at processing time — superposition property).
    AgentActivation,
    /// The bulletin board is refreshed.
    BoardUpdate,
    /// End of the simulation horizon.
    Horizon,
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: Time,
    /// What happens.
    pub kind: EventKind,
    /// Insertion sequence number (tie-breaker).
    pub seq: u64,
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A deterministic min-heap of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<std::cmp::Reverse<Event>>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event.
    pub fn schedule(&mut self, time: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(std::cmp::Reverse(Event { time, kind, seq }));
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|r| r.0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(2.0), EventKind::BoardUpdate);
        q.schedule(Time::new(1.0), EventKind::AgentActivation);
        q.schedule(Time::new(3.0), EventKind::Horizon);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().kind, EventKind::AgentActivation);
        assert_eq!(q.pop().unwrap().kind, EventKind::BoardUpdate);
        assert_eq!(q.pop().unwrap().kind, EventKind::Horizon);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(1.0), EventKind::BoardUpdate);
        q.schedule(Time::new(1.0), EventKind::AgentActivation);
        assert_eq!(q.pop().unwrap().kind, EventKind::BoardUpdate);
        assert_eq!(q.pop().unwrap().kind, EventKind::AgentActivation);
    }

    #[test]
    fn time_total_order() {
        assert!(Time::new(1.0) < Time::new(2.0));
        assert_eq!(Time::new(1.5).seconds(), 1.5);
        let mut v = [Time::new(3.0), Time::new(1.0), Time::new(2.0)];
        v.sort();
        assert_eq!(v[0].seconds(), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        let _ = Time::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_time_rejected() {
        let _ = Time::new(-1.0);
    }

    #[test]
    fn empty_queue_reports_empty() {
        let q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
