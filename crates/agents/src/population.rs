//! Finite agent populations and their empirical flows.
//!
//! The paper's population is a continuum; a finite simulation assigns
//! `N` agents to paths. Agents of one commodity are exchangeable, so
//! the state is just a count per path. Counts convert to a feasible
//! [`FlowVec`] by scaling each commodity's counts to its demand, and
//! flows convert to counts by largest-remainder apportionment — the
//! round trip is exact when the flow is representable.

use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;

/// Agent counts per path, with fixed per-commodity totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Population {
    counts: Vec<u64>,
    commodity_totals: Vec<u64>,
}

impl Population {
    /// Apportions `num_agents` agents to paths approximating `flow`.
    ///
    /// Agents are first split across commodities proportionally to
    /// demand, then within each commodity across paths proportionally
    /// to `flow`, using largest-remainder rounding at both levels so
    /// totals are exact.
    ///
    /// # Panics
    ///
    /// Panics if `num_agents < instance.num_commodities()` (every
    /// commodity needs at least one agent) or `flow` has wrong length.
    pub fn apportion(instance: &Instance, num_agents: u64, flow: &FlowVec) -> Self {
        assert_eq!(flow.len(), instance.num_paths(), "flow length mismatch");
        assert!(
            num_agents >= instance.num_commodities() as u64,
            "need at least one agent per commodity"
        );
        let demands: Vec<f64> = instance.commodities().iter().map(|c| c.demand).collect();
        let commodity_totals = largest_remainder(&demands, num_agents, true);
        let mut counts = vec![0u64; instance.num_paths()];
        for (i, &total) in commodity_totals.iter().enumerate() {
            let range = instance.commodity_paths(i);
            let shares: Vec<f64> = flow.values()[range.clone()].to_vec();
            let alloc = largest_remainder(&shares, total, false);
            for (offset, a) in alloc.iter().enumerate() {
                counts[range.start + offset] = *a;
            }
        }
        Population {
            counts,
            commodity_totals,
        }
    }

    /// Total number of agents.
    pub fn num_agents(&self) -> u64 {
        self.commodity_totals.iter().sum()
    }

    /// Agents of commodity `i`.
    pub fn commodity_total(&self, i: usize) -> u64 {
        self.commodity_totals[i]
    }

    /// Agent count on the path with global index `p`.
    #[inline]
    pub fn count(&self, p: usize) -> u64 {
        self.counts[p]
    }

    /// All counts, path-indexed.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Moves one agent from path `from` to path `to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` carries no agents (an invariant violation) or
    /// the paths belong to different commodities.
    pub fn migrate(&mut self, instance: &Instance, from: usize, to: usize) {
        assert!(self.counts[from] > 0, "no agent to move from path {from}");
        debug_assert_eq!(
            instance.commodity_of_path(wardrop_net::PathId::from_index(from)),
            instance.commodity_of_path(wardrop_net::PathId::from_index(to)),
            "agents migrate within their own commodity"
        );
        self.counts[from] -= 1;
        self.counts[to] += 1;
    }

    /// Sets commodity `i`'s agent count to `new_total` — demand churn.
    ///
    /// The commodity's agents are re-apportioned to the new total
    /// proportionally to the current per-path counts (largest-remainder
    /// rounding), so arrivals join paths in proportion to their current
    /// occupancy and departures leave the same way; an emptied
    /// commodity refills uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `new_total == 0` (every commodity keeps at least one
    /// agent, mirroring [`Population::apportion`]).
    pub fn set_commodity_total(&mut self, instance: &Instance, i: usize, new_total: u64) {
        assert!(new_total > 0, "every commodity keeps at least one agent");
        if self.commodity_totals[i] == new_total {
            return;
        }
        let range = instance.commodity_paths(i);
        let weights: Vec<f64> = self.counts[range.clone()]
            .iter()
            .map(|c| *c as f64)
            .collect();
        let alloc = largest_remainder(&weights, new_total, false);
        for (offset, a) in alloc.iter().enumerate() {
            self.counts[range.start + offset] = *a;
        }
        self.commodity_totals[i] = new_total;
    }

    /// Re-apportions the per-commodity totals to the (changed) demands
    /// of `instance`, keeping the overall agent count — the
    /// finite-population counterpart of a scenario demand event.
    /// Surging commodities receive arrivals, shrinking ones lose
    /// agents, both proportionally to current path occupancy.
    pub fn reapportion(&mut self, instance: &Instance) {
        let n = self.num_agents();
        let demands: Vec<f64> = instance.commodities().iter().map(|c| c.demand).collect();
        let new_totals = largest_remainder(&demands, n, true);
        for (i, total) in new_totals.iter().enumerate() {
            self.set_commodity_total(instance, i, *total);
        }
    }

    /// The empirical flow: commodity `i`'s counts scaled to demand
    /// `r_i`.
    pub fn to_flow(&self, instance: &Instance) -> FlowVec {
        let mut flow = FlowVec::from_values_unchecked(vec![0.0; self.counts.len()]);
        self.to_flow_into(instance, &mut flow);
        flow
    }

    /// Writes the empirical flow into `out`, reusing its buffer — the
    /// allocation-free counterpart of [`Population::to_flow`] for
    /// per-phase conversion inside simulation loops.
    ///
    /// # Panics
    ///
    /// Panics if `out` was sized for a different instance.
    pub fn to_flow_into(&self, instance: &Instance, out: &mut FlowVec) {
        assert_eq!(out.len(), self.counts.len(), "flow buffer length mismatch");
        let values = out.values_mut();
        for (i, c) in instance.commodities().iter().enumerate() {
            let total = self.commodity_totals[i] as f64;
            for p in instance.commodity_paths(i) {
                values[p] = self.counts[p] as f64 / total * c.demand;
            }
        }
    }
}

/// Allocates `total` integer units proportionally to non-negative
/// `weights` by the largest-remainder method.
///
/// With `at_least_one` every positive-weight entry receives ≥ 1 unit
/// (used for commodities, which must keep at least one agent).
fn largest_remainder(weights: &[f64], total: u64, at_least_one: bool) -> Vec<u64> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 {
        // Degenerate: spread evenly.
        let n = weights.len() as u64;
        let base = total / n;
        let mut out = vec![base; weights.len()];
        for item in out.iter_mut().take((total % n) as usize) {
            *item += 1;
        }
        return out;
    }
    let quotas: Vec<f64> = weights.iter().map(|w| w / sum * total as f64).collect();
    let mut alloc: Vec<u64> = quotas.iter().map(|q| q.floor() as u64).collect();
    if at_least_one {
        for (a, w) in alloc.iter_mut().zip(weights) {
            if *w > 0.0 && *a == 0 {
                *a = 1;
            }
        }
    }
    let assigned: u64 = alloc.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|a, b| {
        let ra = quotas[*a] - quotas[*a].floor();
        let rb = quotas[*b] - quotas[*b].floor();
        rb.partial_cmp(&ra)
            .expect("finite remainders")
            .then(a.cmp(b))
    });
    let mut remaining = total.saturating_sub(assigned);
    let mut idx = 0;
    while remaining > 0 {
        alloc[order[idx % order.len()]] += 1;
        remaining -= 1;
        idx += 1;
    }
    // If at_least_one overshot the total, trim from the largest allocations.
    let mut overshoot = alloc.iter().sum::<u64>().saturating_sub(total);
    while overshoot > 0 {
        let max_i = (0..alloc.len())
            .max_by_key(|i| alloc[*i])
            .expect("non-empty weights");
        if alloc[max_i] <= 1 {
            break;
        }
        alloc[max_i] -= 1;
        overshoot -= 1;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use wardrop_net::builders;

    #[test]
    fn apportion_matches_uniform_flow() {
        let inst = builders::pigou();
        let f = FlowVec::uniform(&inst);
        let pop = Population::apportion(&inst, 100, &f);
        assert_eq!(pop.num_agents(), 100);
        assert_eq!(pop.counts(), &[50, 50]);
    }

    #[test]
    fn apportion_handles_remainders() {
        let inst = builders::braess(); // 3 paths, uniform = 1/3 each
        let f = FlowVec::uniform(&inst);
        let pop = Population::apportion(&inst, 100, &f);
        assert_eq!(pop.num_agents(), 100);
        let mut counts = pop.counts().to_vec();
        counts.sort_unstable();
        assert_eq!(counts, vec![33, 33, 34]);
    }

    #[test]
    fn round_trip_flow_is_close() {
        let inst = builders::braess();
        let f = FlowVec::from_values(&inst, vec![0.21, 0.33, 0.46]).unwrap();
        let pop = Population::apportion(&inst, 1000, &f);
        let g = pop.to_flow(&inst);
        assert!(f.linf_distance(&g) <= 1.0 / 1000.0 + 1e-12);
        assert!(g.is_feasible(&inst, 1e-9));
    }

    #[test]
    fn multi_commodity_totals_follow_demand() {
        let inst = builders::multi_commodity_grid(2, 2, 1);
        let f = FlowVec::uniform(&inst);
        let pop = Population::apportion(&inst, 101, &f);
        assert_eq!(pop.num_agents(), 101);
        // Demands are ½/½: totals differ by at most 1.
        let a = pop.commodity_total(0);
        let b = pop.commodity_total(1);
        assert!(a.abs_diff(b) <= 1);
    }

    #[test]
    fn migrate_moves_one_agent() {
        let inst = builders::pigou();
        let f = FlowVec::uniform(&inst);
        let mut pop = Population::apportion(&inst, 10, &f);
        pop.migrate(&inst, 1, 0);
        assert_eq!(pop.counts(), &[6, 4]);
        assert_eq!(pop.num_agents(), 10);
    }

    #[test]
    #[should_panic(expected = "no agent")]
    fn migrate_from_empty_path_panics() {
        let inst = builders::pigou();
        let f = FlowVec::from_values(&inst, vec![1.0, 0.0]).unwrap();
        let mut pop = Population::apportion(&inst, 10, &f);
        pop.migrate(&inst, 1, 0);
    }

    #[test]
    fn to_flow_into_matches_to_flow_without_moving_the_buffer() {
        let inst = builders::multi_commodity_grid(2, 2, 1);
        let f = FlowVec::uniform(&inst);
        let pop = Population::apportion(&inst, 57, &f);
        let mut out = FlowVec::uniform(&inst);
        let ptr = out.values().as_ptr();
        pop.to_flow_into(&inst, &mut out);
        assert_eq!(out, pop.to_flow(&inst));
        assert_eq!(out.values().as_ptr(), ptr);
    }

    #[test]
    fn to_flow_respects_demands() {
        let inst = builders::multi_commodity_grid(2, 2, 1);
        let f = FlowVec::uniform(&inst);
        let pop = Population::apportion(&inst, 57, &f);
        let g = pop.to_flow(&inst);
        assert!(g.is_feasible(&inst, 1e-9));
    }

    #[test]
    fn set_commodity_total_preserves_shares() {
        let inst = builders::braess();
        let f = FlowVec::from_values(&inst, vec![0.5, 0.3, 0.2]).unwrap();
        let mut pop = Population::apportion(&inst, 100, &f);
        pop.set_commodity_total(&inst, 0, 200);
        assert_eq!(pop.num_agents(), 200);
        assert_eq!(pop.counts().iter().sum::<u64>(), 200);
        // Shares preserved up to rounding.
        assert!((pop.count(0) as f64 / 200.0 - 0.5).abs() < 0.01);
        pop.set_commodity_total(&inst, 0, 50);
        assert_eq!(pop.num_agents(), 50);
        assert!((pop.count(1) as f64 / 50.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn reapportion_follows_demand_churn() {
        let mut inst = builders::multi_commodity_grid(3, 3, 5);
        let f = FlowVec::uniform(&inst);
        let mut pop = Population::apportion(&inst, 1000, &f);
        inst.set_demand(0, 0.8).unwrap();
        pop.reapportion(&inst);
        assert_eq!(pop.num_agents(), 1000);
        assert_eq!(pop.commodity_total(0), 800);
        assert_eq!(pop.commodity_total(1), 200);
        // The empirical flow is feasible for the mutated demands.
        assert!(pop.to_flow(&inst).is_feasible(&inst, 1e-9));
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn set_commodity_total_rejects_zero() {
        let inst = builders::pigou();
        let mut pop = Population::apportion(&inst, 10, &FlowVec::uniform(&inst));
        pop.set_commodity_total(&inst, 0, 0);
    }

    #[test]
    fn largest_remainder_exact_total() {
        let alloc = largest_remainder(&[0.5, 0.3, 0.2], 7, false);
        assert_eq!(alloc.iter().sum::<u64>(), 7);
        let alloc = largest_remainder(&[1.0, 0.0], 5, false);
        assert_eq!(alloc, vec![5, 0]);
    }

    #[test]
    fn largest_remainder_zero_weights_spread() {
        let alloc = largest_remainder(&[0.0, 0.0, 0.0], 5, false);
        assert_eq!(alloc.iter().sum::<u64>(), 5);
    }
}
