//! The million-agent open-system discrete-event simulator.
//!
//! Where [`crate::sim`] replays the paper's process one activation at a
//! time (one event per agent activation — O(N) events per phase), this
//! module simulates the *open* system at O(paths) cost per inter-event
//! interval, independent of the population size:
//!
//! * **Event calendar** ([`Calendar`]): board posts, Poisson
//!   arrivals/departures, queue-state refreshes and the horizon are
//!   typed events on a continuous clock, popped from a bucketed timing
//!   wheel in O(1) amortised.
//! * **Compact state**: the population lives entirely in per-path
//!   `u64` counters plus a per-commodity Fenwick tree (for O(log P)
//!   count-proportional departure picks). 10⁷ agents cost exactly as
//!   many bytes as 10² — see [`OpenSystem::state_bytes`].
//! * **Batched activations** (τ-leaping): within a phase the board is
//!   frozen, so each agent on path `P` migrates at the constant rate
//!   `m_P = Σ_Q σ_Q µ(ℓ̂_P, ℓ̂_Q)` — the same exit rates the fluid
//!   engine's matrix-free kernel computes in O(P log P) per post
//!   ([`wardrop_core::kernel::fill_exit_rates`]). Over a leap of length
//!   `δ` the number of movers is `Binomial(n_P, 1 − e^{−m_P δ})`, drawn
//!   in one pass; destinations are sampled from the frozen
//!   [`SamplingCache`] by thinning with an exact O(P) fallback. The
//!   only approximation is the second revision of an agent that moved
//!   earlier in the same leap — an O((m δ)²) effect, and *exactly* zero
//!   for best response (movers land on the board minimum either way).
//! * **Aggregate clocks** (superposition/thinning): arrivals fire from
//!   one exponential clock of the total rate λ (commodity chosen ∝
//!   demand at fire time), departures from one clock of rate `d·N`
//!   re-drawn — memorylessness — whenever `N` changes, with stale
//!   generations discarded lazily on pop.
//! * **M/M/c queueing delays** ([`QueueingModel`]): each edge can carry
//!   an Erlang-C waiting time driven by its current occupancy, added to
//!   the *experienced* edge latencies that board posts (and the
//!   staleness metric) see — so board staleness interacts with real
//!   waiting times, not just the instantaneous latency functions.
//!
//! The per-phase [`PhaseRecord`] metrics are bit-compatible with the
//! fluid engines and [`crate::sim`], so every analysis tool applies
//! unchanged. A closed configuration (no churn) reproduces
//! [`crate::sim::run_agents`] flow trajectories within binomial noise
//! (pinned by the `equivalence` proptest suite).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use wardrop_core::board::BulletinBoard;
use wardrop_core::fault::{FaultPlan, FaultState};
use wardrop_core::kernel::SeparableKernel;
use wardrop_core::migration::MigrationRule;
use wardrop_core::trajectory::{PhaseRecord, Trajectory};
use wardrop_core::WorkerPool;
use wardrop_net::eval::EvalWorkspace;
use wardrop_net::flow::{path_latencies_from_edge_into, FlowVec};
use wardrop_net::instance::Instance;
use wardrop_net::NetError;

use crate::cache::SamplingCache;
use crate::calendar::{Calendar, OpenEventKind};
use crate::population::Population;
use crate::sim::{rand_exp, AgentPolicy};

/// Utilisation is clamped below 1 so the Erlang-C wait stays finite —
/// the open system models *heavy* congestion, not a blown-up queue.
const MAX_UTILISATION: f64 = 0.995;

/// Thinning proposals per mover before falling back to the exact
/// O(paths) CDF walk.
const THINNING_TRIES: u32 = 64;

/// Time slack under which a leap is considered already integrated.
const LEAP_EPS: f64 = 1e-12;

/// Calendar buckets per board period (wheel width = `T / 8`).
const BUCKETS_PER_PERIOD: f64 = 8.0;

/// Number of wheel buckets (span = `64 / 8 = 8` board periods).
const NUM_BUCKETS: usize = 64;

/// An M/M/c queueing overlay on every edge.
///
/// Each edge is modelled as an M/M/c station whose per-job mean service
/// time is the evaluated latency `ℓ_e(x_e)` (so the uncongested sojourn
/// matches the latency function exactly) and whose utilisation is read
/// off the current occupancy: `ρ_e = clamp(scale · x_e, 0, 0.995)`.
/// The Erlang-C waiting probability `C(c, cρ)` then gives the mean
/// wait `W_e = C · ℓ_e / (c (1 − ρ))`, which is *added* to the
/// experienced edge latency at board posts and queue refreshes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueingModel {
    /// Number of servers `c ≥ 1` per edge.
    pub servers: u32,
    /// Maps edge flow to utilisation: `ρ_e = scale · x_e` (clamped).
    pub utilisation_scale: f64,
}

impl QueueingModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero or `utilisation_scale` is not finite
    /// and non-negative.
    pub fn new(servers: u32, utilisation_scale: f64) -> Self {
        assert!(servers >= 1, "need at least one server");
        assert!(
            utilisation_scale.is_finite() && utilisation_scale >= 0.0,
            "utilisation scale must be finite and ≥ 0"
        );
        QueueingModel {
            servers,
            utilisation_scale,
        }
    }

    /// Mean Erlang-C waiting time for an edge with evaluated latency
    /// `service_latency` carrying flow `flow`.
    pub fn wait(&self, service_latency: f64, flow: f64) -> f64 {
        let c = self.servers as f64;
        let rho = (self.utilisation_scale * flow.max(0.0)).min(MAX_UTILISATION);
        if rho <= 0.0 || service_latency <= 0.0 {
            return 0.0;
        }
        // Erlang-B by the stable recurrence, then the B → C conversion.
        let a = c * rho;
        let mut b = 1.0;
        for k in 1..=self.servers {
            b = a * b / (k as f64 + a * b);
        }
        let c_wait = b / (1.0 - rho * (1.0 - b));
        c_wait * service_latency / (c * (1.0 - rho))
    }
}

/// Configuration of an open-system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenSystemConfig {
    /// Initial number of agents `N`.
    pub num_agents: u64,
    /// Bulletin-board update period `T`.
    pub update_period: f64,
    /// Number of board posts (= phases) to simulate; the horizon is
    /// `T · num_posts`.
    pub num_posts: usize,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
    /// Total Poisson arrival rate λ (0 ⇒ no arrivals). The arriving
    /// commodity is chosen ∝ demand at fire time.
    #[serde(default)]
    pub arrival_rate: f64,
    /// Per-agent departure rate `d` (0 ⇒ no departures); the aggregate
    /// clock runs at `d·N`.
    #[serde(default)]
    pub departure_rate: f64,
    /// Maximum τ-leap length (0 ⇒ `T / 4`). Smaller leaps reduce the
    /// O((mδ)²) multi-revision bias of smooth policies.
    #[serde(default)]
    pub max_leap: f64,
    /// Queue-state refreshes per board period (only with `queueing`).
    #[serde(default = "default_queue_refreshes")]
    pub queue_refreshes_per_post: usize,
    /// Optional M/M/c queueing overlay.
    #[serde(default)]
    pub queueing: Option<QueueingModel>,
    /// Optional bulletin-board fault plan, applied at post time.
    #[serde(default)]
    pub faults: Option<FaultPlan>,
    /// Record empirical flows at phase starts.
    #[serde(default)]
    pub record_flows: bool,
    /// `δ` thresholds for unsatisfied-volume columns.
    #[serde(default = "default_deltas")]
    pub deltas: Vec<f64>,
}

fn default_queue_refreshes() -> usize {
    4
}

fn default_deltas() -> Vec<f64> {
    vec![0.05]
}

impl OpenSystemConfig {
    /// A closed (no churn, no queueing, no faults) configuration.
    pub fn new(num_agents: u64, update_period: f64, num_posts: usize, seed: u64) -> Self {
        OpenSystemConfig {
            num_agents,
            update_period,
            num_posts,
            seed,
            arrival_rate: 0.0,
            departure_rate: 0.0,
            max_leap: 0.0,
            queue_refreshes_per_post: default_queue_refreshes(),
            queueing: None,
            faults: None,
            record_flows: false,
            deltas: default_deltas(),
        }
    }

    /// Opens the system: total arrival rate λ and per-agent departure
    /// rate `d` (builder style).
    pub fn with_churn(mut self, arrival_rate: f64, departure_rate: f64) -> Self {
        self.arrival_rate = arrival_rate;
        self.departure_rate = departure_rate;
        self
    }

    /// Attaches the M/M/c queueing overlay (builder style).
    pub fn with_queueing(mut self, model: QueueingModel) -> Self {
        self.queueing = Some(model);
        self
    }

    /// Attaches a bulletin-board fault plan (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Caps the τ-leap length (builder style).
    pub fn with_max_leap(mut self, max_leap: f64) -> Self {
        self.max_leap = max_leap;
        self
    }

    /// Enables flow recording (builder style).
    pub fn with_flows(mut self) -> Self {
        self.record_flows = true;
        self
    }

    /// Sets the `δ` thresholds (builder style).
    pub fn with_deltas(mut self, deltas: Vec<f64>) -> Self {
        self.deltas = deltas;
        self
    }
}

/// Event and population counters of one open-system run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OpenStats {
    /// Calendar events processed (stale departure generations excluded).
    pub events: u64,
    /// Board posts.
    pub posts: u64,
    /// τ-leaps integrated.
    pub leaps: u64,
    /// Agents moved by batched activations.
    pub migrations: u64,
    /// Poisson arrivals processed.
    pub arrivals: u64,
    /// Poisson departures processed.
    pub departures: u64,
    /// Destination draws that exhausted thinning and took the exact
    /// O(paths) fallback walk.
    pub proposal_fallbacks: u64,
    /// Population at the horizon.
    pub final_population: u64,
    /// Mover-weighted mean |experienced − posted| path latency — the
    /// board-staleness observable (0 in a fully synchronous world).
    pub staleness_mean: f64,
    /// Bytes of O(paths) agent state — independent of the population.
    pub state_bytes: usize,
    /// Bytes held by the event calendar (ring + reserved bucket
    /// capacity) — O(clock rates), independent of both N and paths.
    pub calendar_bytes: usize,
}

/// A finished open-system run: the fluid-compatible trajectory plus
/// the event counters.
#[derive(Debug, Clone)]
pub struct OpenSystemRun {
    /// One [`PhaseRecord`] per board post, same semantics as the fluid
    /// engine and [`crate::sim::run_agents`].
    pub trajectory: Trajectory,
    /// Event and population counters.
    pub stats: OpenStats,
}

/// The open-system simulator state. Construct with [`OpenSystem::new`],
/// drive with [`OpenSystem::step`] (one calendar event per call) or run
/// to the horizon with [`OpenSystem::finish`].
#[derive(Debug)]
pub struct OpenSystem<'a> {
    instance: &'a Instance,
    policy: &'a AgentPolicy,
    config: OpenSystemConfig,
    rng: StdRng,
    max_leap: f64,
    horizon: f64,

    // --- O(paths) population state ---
    counts: Vec<u64>,
    commodity_totals: Vec<u64>,
    population: u64,
    /// Per-commodity Fenwick trees over the path counts (flat, local
    /// 1-based indexing within each commodity's range).
    fenwick: Vec<u64>,

    // --- event core ---
    calendar: Calendar,
    last_event_time: f64,
    departure_gen: u32,
    done: bool,

    // --- frozen-board policy tables (rebuilt per post) ---
    cache: SamplingCache,
    kernel: Option<SeparableKernel>,
    /// Normalised sampling distribution σ per path.
    sigma: Vec<f64>,
    /// Per-activation move probability `m_P = Σ_Q σ_Q µ(ℓ̂_P, ℓ̂_Q)`.
    move_prob: Vec<f64>,
    /// Movers drawn in the current leap (pass-1 scratch).
    move_count: Vec<u64>,
    /// Latency-sorted local permutation per commodity (kernel path).
    order: Vec<u32>,
    /// Dense thinning caps `max_Q µ(ℓ̂_P, ·)` — sized only for smooth
    /// policies without a separable kernel.
    mu_cap: Vec<f64>,
    best_reply: Vec<usize>,
    commodity_min_lat: Vec<f64>,

    // --- board + evaluation (network-sized, shared with the fluid
    // engines; excluded from state_bytes) ---
    board: BulletinBoard,
    fault: Option<FaultState>,
    eval: EvalWorkspace,
    flow: FlowVec,
    queue_delay: Vec<f64>,
    true_edge_lat: Vec<f64>,
    /// Experienced per-path latencies (evaluated + queue delay).
    true_path_lat: Vec<f64>,
    board_posted: bool,

    // --- phase bookkeeping ---
    phase_open: bool,
    start_edge_flows: Vec<f64>,
    start_edge_latencies: Vec<f64>,
    potential_start: f64,
    avg_latency_start: f64,
    max_regret_start: f64,
    unsatisfied_start: Vec<f64>,
    weakly_unsatisfied_start: Vec<f64>,
    phases: Vec<PhaseRecord>,
    flows: Vec<FlowVec>,

    // --- staleness metric ---
    staleness_accum: f64,
    staleness_weight: f64,

    stats: OpenStats,
}

impl<'a> OpenSystem<'a> {
    /// Builds the simulator from the flow profile `f0` (apportioned to
    /// `config.num_agents` integer agents) and schedules the initial
    /// events: the bootstrap board post at `t = 0`, the horizon, and
    /// the arrival/departure/queue-refresh clocks where configured.
    ///
    /// # Errors
    ///
    /// Returns the fault-plan validation error, if any.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero agents or
    /// posts, non-positive period, negative rates) or `f0` is
    /// infeasible.
    pub fn new(
        instance: &'a Instance,
        policy: &'a AgentPolicy,
        f0: &FlowVec,
        config: OpenSystemConfig,
    ) -> Result<Self, NetError> {
        assert!(config.num_agents > 0, "need at least one agent");
        assert!(
            config.update_period.is_finite() && config.update_period > 0.0,
            "update period must be positive"
        );
        assert!(config.num_posts > 0, "need at least one board post");
        assert!(
            config.arrival_rate.is_finite() && config.arrival_rate >= 0.0,
            "arrival rate must be finite and ≥ 0"
        );
        assert!(
            config.departure_rate.is_finite() && config.departure_rate >= 0.0,
            "departure rate must be finite and ≥ 0"
        );
        assert!(
            config.max_leap.is_finite() && config.max_leap >= 0.0,
            "max leap must be finite and ≥ 0"
        );
        assert!(
            f0.is_feasible(instance, 1e-6),
            "initial flow must be feasible"
        );

        let np = instance.num_paths();
        let nc = instance.num_commodities();
        let ne = instance.num_edges();
        let t_period = config.update_period;
        let horizon = t_period * config.num_posts as f64;

        let pop = Population::apportion(instance, config.num_agents, f0);
        let counts = pop.counts().to_vec();
        let commodity_totals: Vec<u64> = (0..nc).map(|i| pop.commodity_total(i)).collect();
        let mut fenwick = vec![0u64; np];
        for i in 0..nc {
            let range = instance.commodity_paths(i);
            fen_build(&mut fenwick[range.clone()], &counts[range]);
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut calendar = Calendar::new(t_period / BUCKETS_PER_PERIOD, NUM_BUCKETS);
        // Pre-size the wheel from the configured clock rates so
        // steady-state scheduling never grows a bucket: expected
        // occupancy per bucket is (total event rate) × (bucket width),
        // padded by ten standard deviations of Poisson fluctuation.
        // Clamped so a pathological per-agent departure rate cannot
        // balloon the constant footprint.
        let event_rate = config.arrival_rate
            + config.departure_rate * config.num_agents as f64
            + (1.0 + config.queue_refreshes_per_post as f64) / t_period;
        let per_bucket = event_rate * t_period / BUCKETS_PER_PERIOD;
        let hint = (per_bucket + 10.0 * per_bucket.sqrt() + 32.0).ceil() as usize;
        calendar.reserve_per_bucket(hint.min(4096));
        // Scheduled first so the t = 0 tie fires before everything
        // else, and the horizon before any same-instant churn.
        calendar.schedule(0.0, OpenEventKind::BoardPost);
        calendar.schedule(horizon, OpenEventKind::Horizon);
        if config.arrival_rate > 0.0 {
            let first = rand_exp(&mut rng, config.arrival_rate);
            if first <= horizon {
                calendar.schedule(first, OpenEventKind::Arrival);
            }
        }
        if config.departure_rate > 0.0 {
            let rate = config.departure_rate * config.num_agents as f64;
            let first = rand_exp(&mut rng, rate);
            if first <= horizon {
                calendar.schedule(first, OpenEventKind::Departure { gen: 0 });
            }
        }
        if config.queueing.is_some() && config.queue_refreshes_per_post > 0 {
            let interval = t_period / config.queue_refreshes_per_post as f64;
            if interval <= horizon {
                calendar.schedule(interval, OpenEventKind::QueueRefresh);
            }
        }

        let fault = match &config.faults {
            Some(plan) => Some(FaultState::new(plan.clone(), instance)?),
            None => None,
        };
        let mut cache = SamplingCache::default();
        cache.bind(instance);
        let kernel = match policy {
            AgentPolicy::Smooth { migration, .. } => migration.kernel(),
            AgentPolicy::BestResponse => None,
        };
        // The dense thinning caps are only carried when a smooth policy
        // has no separable closed form (kernel caps are recomputed from
        // the commodity minimum on the fly).
        let mu_cap = match policy {
            AgentPolicy::Smooth { .. } if kernel.is_none() => vec![0.0; np],
            _ => Vec::new(),
        };

        let max_leap = if config.max_leap > 0.0 {
            config.max_leap
        } else {
            t_period / 4.0
        };
        let num_posts = config.num_posts;

        Ok(OpenSystem {
            instance,
            policy,
            config,
            rng,
            max_leap,
            horizon,
            counts,
            commodity_totals,
            population: pop.num_agents(),
            fenwick,
            calendar,
            last_event_time: 0.0,
            departure_gen: 0,
            done: false,
            cache,
            kernel,
            sigma: vec![0.0; np],
            move_prob: vec![0.0; np],
            move_count: vec![0; np],
            order: vec![0; np],
            mu_cap,
            best_reply: vec![0; nc],
            commodity_min_lat: vec![0.0; nc],
            board: BulletinBoard::for_instance(instance),
            fault,
            eval: EvalWorkspace::new(instance),
            flow: FlowVec::from_values_unchecked(vec![0.0; np]),
            queue_delay: vec![0.0; ne],
            true_edge_lat: vec![0.0; ne],
            true_path_lat: vec![0.0; np],
            board_posted: false,
            phase_open: false,
            start_edge_flows: vec![0.0; ne],
            start_edge_latencies: vec![0.0; ne],
            potential_start: 0.0,
            avg_latency_start: 0.0,
            max_regret_start: 0.0,
            unsatisfied_start: Vec::new(),
            weakly_unsatisfied_start: Vec::new(),
            phases: Vec::with_capacity(num_posts),
            flows: Vec::new(),
            staleness_accum: 0.0,
            staleness_weight: 0.0,
            stats: OpenStats::default(),
        })
    }

    /// Current population size.
    #[inline]
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Simulation clock (time of the last integrated leap boundary).
    #[inline]
    pub fn time(&self) -> f64 {
        self.last_event_time
    }

    /// Counters so far (finalised fields like `staleness_mean` are
    /// filled by [`OpenSystem::finish`]).
    #[inline]
    pub fn stats(&self) -> &OpenStats {
        &self.stats
    }

    /// True once the horizon event has fired.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Bytes of agent-population state: the per-path counters, Fenwick
    /// trees and frozen policy tables — everything that is
    /// O(paths + commodities) and *independent of N*. The
    /// network-sized evaluation workspace, board and flow buffers are
    /// excluded (they are the same interface buffers the fluid engine
    /// carries for the identical instance), as is the event calendar,
    /// whose reserved capacity scales with the configured clock
    /// *rates* — see [`OpenStats::calendar_bytes`].
    pub fn state_bytes(&self) -> usize {
        use std::mem::size_of;
        self.counts.capacity() * size_of::<u64>()
            + self.commodity_totals.capacity() * size_of::<u64>()
            + self.fenwick.capacity() * size_of::<u64>()
            + self.sigma.capacity() * size_of::<f64>()
            + self.move_prob.capacity() * size_of::<f64>()
            + self.move_count.capacity() * size_of::<u64>()
            + self.order.capacity() * size_of::<u32>()
            + self.mu_cap.capacity() * size_of::<f64>()
            + self.best_reply.capacity() * size_of::<usize>()
            + self.commodity_min_lat.capacity() * size_of::<f64>()
            + self.true_path_lat.capacity() * size_of::<f64>()
            + self.cache.state_bytes()
    }

    /// Processes the next calendar event, returning its kind (`None`
    /// once the horizon has fired). Pending τ-leaps up to the event
    /// time are integrated first, so state always reflects the clock.
    pub fn step(&mut self) -> Option<OpenEventKind> {
        if self.done {
            return None;
        }
        loop {
            let ev = self.calendar.pop()?;
            if let OpenEventKind::Departure { gen } = ev.kind {
                if gen != self.departure_gen {
                    // Stale clock generation: the rate changed since
                    // this draw; a fresh one is already scheduled.
                    continue;
                }
            }
            self.stats.events += 1;
            let now = ev.time.min(self.horizon);
            match ev.kind {
                OpenEventKind::BoardPost => {
                    self.advance(now);
                    self.handle_board_post(now);
                }
                OpenEventKind::Arrival => {
                    self.advance(now);
                    self.handle_arrival(now);
                }
                OpenEventKind::Departure { .. } => {
                    self.advance(now);
                    self.handle_departure(now);
                }
                OpenEventKind::QueueRefresh => {
                    self.advance(now);
                    self.handle_queue_refresh(now);
                }
                OpenEventKind::Horizon => {
                    self.advance(self.horizon);
                    self.close_phase();
                    self.stats.final_population = self.population;
                    self.done = true;
                }
            }
            return Some(ev.kind);
        }
    }

    /// Runs to the horizon and packages the trajectory and stats.
    pub fn finish(mut self) -> OpenSystemRun {
        while self.step().is_some() {}
        self.counts_to_flow();
        let mut stats = self.stats;
        stats.final_population = self.population;
        stats.staleness_mean = if self.staleness_weight > 0.0 {
            self.staleness_accum / self.staleness_weight
        } else {
            0.0
        };
        stats.state_bytes = self.state_bytes();
        stats.calendar_bytes = self.calendar.state_bytes();
        OpenSystemRun {
            trajectory: Trajectory {
                update_period: self.config.update_period,
                deltas: self.config.deltas.clone(),
                phases: self.phases,
                flows: self.flows,
                flow_stride: 1,
                final_flow: self.flow.clone(),
                dynamics: format!("open:{}", self.policy.name()),
            },
            stats,
        }
    }

    // --- τ-leaping ---

    /// Integrates batched activations from the clock up to `t`.
    fn advance(&mut self, t: f64) {
        if !self.board_posted || t <= self.last_event_time {
            self.last_event_time = self.last_event_time.max(t);
            return;
        }
        while t - self.last_event_time > LEAP_EPS {
            let delta = self.max_leap.min(t - self.last_event_time);
            if self.population > 0 {
                self.leap(delta);
            }
            self.last_event_time += delta;
        }
        self.last_event_time = t;
    }

    /// One τ-leap of length `delta`: draw per-path mover counts, then
    /// land them. Sources are frozen first (pass 1 subtracts every
    /// mover before pass 2 adds any) so a mover can never be re-drawn
    /// from its destination within the same leap.
    fn leap(&mut self, delta: f64) {
        self.stats.leaps += 1;
        self.refresh_true_latencies();
        let inst = self.instance;
        // Pass 1: movers out. `1 − e^{−m δ}` is each agent's chance of
        // at least one migrating activation during the leap.
        for i in 0..inst.num_commodities() {
            let range = inst.commodity_paths(i);
            for local in 0..range.len() {
                let p = range.start + local;
                let n_p = self.counts[p];
                let m = self.move_prob[p];
                if n_p == 0 || m <= 0.0 {
                    self.move_count[p] = 0;
                    continue;
                }
                let prob = -(-m * delta).exp_m1();
                let movers = binomial(&mut self.rng, n_p, prob);
                self.move_count[p] = movers;
                if movers > 0 {
                    self.counts[p] -= movers;
                    fen_sub(&mut self.fenwick[range.clone()], local + 1, movers);
                }
            }
        }
        // Pass 2: movers in.
        for i in 0..inst.num_commodities() {
            let range = inst.commodity_paths(i);
            for local in 0..range.len() {
                let p = range.start + local;
                let movers = self.move_count[p];
                if movers == 0 {
                    continue;
                }
                self.stats.migrations += movers;
                // Staleness: each mover chose its destination from the
                // *posted* latency; what it experiences on landing is
                // the true (current + queue) latency. The gap is the
                // board-staleness observable.
                match self.policy {
                    AgentPolicy::BestResponse => {
                        let dest = self.best_reply[i];
                        self.counts[dest] += movers;
                        fen_add(
                            &mut self.fenwick[range.clone()],
                            dest - range.start + 1,
                            movers,
                        );
                        let dev =
                            (self.true_path_lat[dest] - self.board.path_latencies()[dest]).abs();
                        self.staleness_accum += movers as f64 * dev;
                        self.staleness_weight += movers as f64;
                    }
                    AgentPolicy::Smooth { migration, .. } => {
                        for _ in 0..movers {
                            let dest_local = self.draw_destination(i, local, migration.as_ref());
                            let dest = range.start + dest_local;
                            self.counts[dest] += 1;
                            fen_add(&mut self.fenwick[range.clone()], dest_local + 1, 1);
                            let dev = (self.true_path_lat[dest]
                                - self.board.path_latencies()[dest])
                                .abs();
                            self.staleness_accum += dev;
                            self.staleness_weight += 1.0;
                        }
                    }
                }
            }
        }
    }

    /// Samples a mover's destination (local index) within `commodity`:
    /// thinning against the frozen σ-cache, exact CDF walk after
    /// [`THINNING_TRIES`] rejections.
    fn draw_destination(
        &mut self,
        commodity: usize,
        from_local: usize,
        migration: &dyn MigrationRule,
    ) -> usize {
        let inst = self.instance;
        let range = inst.commodity_paths(commodity);
        let from = range.start + from_local;
        let l_from = self.board.path_latencies()[from];
        let kernel = self.kernel;
        let mu = |l_to: f64| match kernel {
            Some(k) => k.probability(l_from, l_to),
            None => migration.probability(l_from, l_to),
        };
        let cap = match kernel {
            Some(k) => k.probability(l_from, self.commodity_min_lat[commodity]),
            None => self.mu_cap[from],
        };
        if cap > 0.0 {
            for _ in 0..THINNING_TRIES {
                let q = self.cache.sample(inst, commodity, &mut self.rng);
                let accept = mu(self.board.path_latencies()[range.start + q]);
                if accept > 0.0 && self.rng.random_range(0.0..cap) < accept {
                    return q;
                }
            }
        }
        // Exact fallback: invert the per-path CDF Σ σ_Q µ(ℓ_P, ℓ_Q).
        self.stats.proposal_fallbacks += 1;
        let total = self.move_prob[from].max(f64::MIN_POSITIVE);
        let u = self.rng.random_range(0.0..total);
        let mut acc = 0.0;
        let mut last_positive = from_local;
        for q in 0..range.len() {
            let w = self.sigma[range.start + q] * mu(self.board.path_latencies()[range.start + q]);
            if w > 0.0 {
                acc += w;
                last_positive = q;
                if u < acc {
                    return q;
                }
            }
        }
        // Rounding overrun of the prefix sums: land on the last path
        // with positive mass.
        last_positive
    }

    // --- event handlers ---

    fn handle_board_post(&mut self, now: f64) {
        let closed = self.close_phase();
        let phase_index = self.phases.len() + usize::from(!closed && !self.phases.is_empty());
        // With no phase to close this is the bootstrap post; otherwise
        // close_phase left the edge evaluation of the current flow in
        // the workspace and only the path pass is missing.
        self.counts_to_flow();
        if closed {
            self.eval.finish_paths(self.instance, &self.flow);
        } else {
            self.eval.evaluate(self.instance, &self.flow);
        }
        if self.config.record_flows {
            self.flows.push(self.flow.clone());
        }
        self.unsatisfied_start = self
            .config
            .deltas
            .iter()
            .map(|d| self.eval.unsatisfied_volume(self.instance, &self.flow, *d))
            .collect();
        self.weakly_unsatisfied_start = self
            .config
            .deltas
            .iter()
            .map(|d| {
                self.eval
                    .weakly_unsatisfied_volume(self.instance, &self.flow, *d)
            })
            .collect();
        self.potential_start = self.eval.potential();
        self.avg_latency_start = self.eval.avg_latency();
        self.max_regret_start = self.eval.max_regret(self.instance, &self.flow, 1e-12);
        self.start_edge_flows
            .copy_from_slice(self.eval.edge_flows());
        self.start_edge_latencies
            .copy_from_slice(self.eval.edge_latencies());
        self.phase_open = true;

        // Post the *experienced* latencies: evaluated + queue wait.
        self.refresh_queue_delays();
        for e in 0..self.true_edge_lat.len() {
            self.true_edge_lat[e] = self.eval.edge_latencies()[e] + self.queue_delay[e];
        }
        match self.fault.as_mut() {
            Some(state) => state.post_parts(
                &mut self.board,
                self.instance,
                self.eval.edge_flows(),
                &self.true_edge_lat,
                self.flow.values(),
                phase_index,
                now,
            ),
            None => self.board.post_from_parts(
                self.instance,
                self.eval.edge_flows(),
                &self.true_edge_lat,
                self.flow.values(),
                now,
            ),
        }
        self.board_posted = true;
        self.rebuild_policy_tables();
        self.stats.posts += 1;

        let next_phase = self.phases.len() + 1;
        if next_phase < self.config.num_posts {
            self.calendar.schedule(
                next_phase as f64 * self.config.update_period,
                OpenEventKind::BoardPost,
            );
        }
    }

    fn handle_arrival(&mut self, now: f64) {
        debug_assert!(self.board_posted, "board posts at t = 0");
        let inst = self.instance;
        // Commodity ∝ demand (total demand is 1, the paper
        // normalisation).
        let u = self.rng.random_range(0.0..1.0);
        let mut commodity = inst.num_commodities() - 1;
        let mut acc = 0.0;
        for (c, com) in inst.commodities().iter().enumerate() {
            acc += com.demand;
            if u < acc {
                commodity = c;
                break;
            }
        }
        let range = inst.commodity_paths(commodity);
        let local = match self.policy {
            AgentPolicy::BestResponse => self.best_reply[commodity] - range.start,
            AgentPolicy::Smooth { .. } => self.cache.sample(inst, commodity, &mut self.rng),
        };
        self.counts[range.start + local] += 1;
        fen_add(&mut self.fenwick[range], local + 1, 1);
        self.commodity_totals[commodity] += 1;
        self.population += 1;
        self.stats.arrivals += 1;
        self.reschedule_departure(now);
        let next = now + rand_exp(&mut self.rng, self.config.arrival_rate);
        if next <= self.horizon {
            self.calendar.schedule(next, OpenEventKind::Arrival);
        }
    }

    fn handle_departure(&mut self, now: f64) {
        if self.population == 0 {
            return;
        }
        // Uniform over agents: commodity ∝ count, path via the Fenwick
        // tree in O(log paths).
        let mut pick = self.rng.random_range(0..self.population);
        let mut commodity = 0;
        while pick >= self.commodity_totals[commodity] {
            pick -= self.commodity_totals[commodity];
            commodity += 1;
        }
        let range = self.instance.commodity_paths(commodity);
        let local = fen_sample(&self.fenwick[range.clone()], pick);
        self.counts[range.start + local] -= 1;
        fen_sub(&mut self.fenwick[range], local + 1, 1);
        self.commodity_totals[commodity] -= 1;
        self.population -= 1;
        self.stats.departures += 1;
        self.reschedule_departure(now);
    }

    fn handle_queue_refresh(&mut self, now: f64) {
        self.counts_to_flow();
        self.eval.evaluate_edges(self.instance, &self.flow);
        self.refresh_queue_delays();
        let interval =
            self.config.update_period / self.config.queue_refreshes_per_post.max(1) as f64;
        let next = now + interval;
        if next <= self.horizon {
            self.calendar.schedule(next, OpenEventKind::QueueRefresh);
        }
    }

    /// Re-draws the aggregate departure clock at rate `d·N`
    /// (memorylessness), invalidating any pending draw via the
    /// generation stamp.
    fn reschedule_departure(&mut self, now: f64) {
        self.departure_gen = self.departure_gen.wrapping_add(1);
        if self.config.departure_rate <= 0.0 || self.population == 0 {
            return;
        }
        let rate = self.config.departure_rate * self.population as f64;
        let next = now + rand_exp(&mut self.rng, rate);
        if next <= self.horizon {
            self.calendar.schedule(
                next,
                OpenEventKind::Departure {
                    gen: self.departure_gen,
                },
            );
        }
    }

    // --- phase bookkeeping ---

    /// Closes the open phase (if any) from a fresh edge evaluation of
    /// the current flow, leaving that evaluation in the workspace.
    fn close_phase(&mut self) -> bool {
        if !self.phase_open {
            return false;
        }
        self.phase_open = false;
        self.counts_to_flow();
        self.eval.evaluate_edges(self.instance, &self.flow);
        let index = self.phases.len();
        let record = PhaseRecord {
            index,
            epoch: 0,
            start_time: index as f64 * self.config.update_period,
            potential_start: self.potential_start,
            potential_end: self.eval.potential(),
            virtual_gain: self
                .eval
                .virtual_gain_from(&self.start_edge_flows, &self.start_edge_latencies),
            avg_latency_start: self.avg_latency_start,
            max_regret_start: self.max_regret_start,
            unsatisfied: std::mem::take(&mut self.unsatisfied_start),
            weakly_unsatisfied: std::mem::take(&mut self.weakly_unsatisfied_start),
        };
        self.phases.push(record);
        true
    }

    // --- frozen-board tables ---

    /// Rebuilds σ, the sorted orders, the per-path move probabilities
    /// and the best replies from the freshly posted board. O(P log P)
    /// with a separable kernel, O(P²) dense fallback otherwise.
    fn rebuild_policy_tables(&mut self) {
        let inst = self.instance;
        match self.policy {
            AgentPolicy::Smooth {
                sampling,
                migration,
            } => {
                self.cache.refill(inst, &self.board, sampling.as_ref());
                for i in 0..inst.num_commodities() {
                    let range = inst.commodity_paths(i);
                    let n = range.len();
                    let total = self.cache.total(i);
                    for local in 0..n {
                        self.sigma[range.start + local] = if total > 0.0 {
                            self.cache.weight(inst, i, local) / total
                        } else {
                            // Matches SamplingCache::sample's uniform
                            // fallback for degenerate boards.
                            1.0 / n as f64
                        };
                    }
                    self.commodity_min_lat[i] = self.board.min_latency(inst, i);
                    self.best_reply[i] = self.board.best_reply(inst, i);
                    let lat = &self.board.path_latencies()[range.clone()];
                    let sigma = &self.sigma[range.clone()];
                    let move_prob = &mut self.move_prob[range.clone()];
                    if let Some(kernel) = self.kernel {
                        let order = &mut self.order[range.clone()];
                        for (k, o) in order.iter_mut().enumerate() {
                            *o = k as u32;
                        }
                        order
                            .sort_unstable_by(|&a, &b| lat[a as usize].total_cmp(&lat[b as usize]));
                        wardrop_core::kernel::fill_exit_rates(kernel, order, sigma, lat, move_prob);
                    } else {
                        for p in 0..n {
                            let mut m = 0.0;
                            let mut cap = 0.0_f64;
                            for q in 0..n {
                                if sigma[q] <= 0.0 {
                                    continue;
                                }
                                let mu = migration.probability(lat[p], lat[q]);
                                m += sigma[q] * mu;
                                cap = cap.max(mu);
                            }
                            move_prob[p] = m;
                            self.mu_cap[range.start + p] = cap;
                        }
                    }
                }
            }
            AgentPolicy::BestResponse => {
                for i in 0..inst.num_commodities() {
                    let range = inst.commodity_paths(i);
                    self.commodity_min_lat[i] = self.board.min_latency(inst, i);
                    self.best_reply[i] = self.board.best_reply(inst, i);
                    for p in range {
                        self.move_prob[p] = if p == self.best_reply[i] { 0.0 } else { 1.0 };
                    }
                }
            }
        }
    }

    // --- evaluation plumbing ---

    /// Writes the scaled empirical flow of the current counts into the
    /// reusable flow buffer (extinct commodities contribute zero flow).
    fn counts_to_flow(&mut self) {
        let inst = self.instance;
        let values = self.flow.values_mut();
        for i in 0..inst.num_commodities() {
            let range = inst.commodity_paths(i);
            let total = self.commodity_totals[i];
            if total == 0 {
                values[range].fill(0.0);
            } else {
                let scale = inst.commodities()[i].demand / total as f64;
                for p in range {
                    values[p] = self.counts[p] as f64 * scale;
                }
            }
        }
    }

    /// Experienced per-path latencies of the *current* flow (evaluated
    /// edge latency + queue delay) — what movers actually encounter,
    /// against which the posted board is compared for staleness.
    fn refresh_true_latencies(&mut self) {
        self.counts_to_flow();
        self.eval.evaluate_edges(self.instance, &self.flow);
        for e in 0..self.true_edge_lat.len() {
            self.true_edge_lat[e] = self.eval.edge_latencies()[e] + self.queue_delay[e];
        }
        path_latencies_from_edge_into(self.instance, &self.true_edge_lat, &mut self.true_path_lat);
    }

    /// Recomputes the M/M/c waits from the edge evaluation currently
    /// held in the workspace.
    fn refresh_queue_delays(&mut self) {
        let Some(model) = self.config.queueing else {
            return;
        };
        for e in 0..self.queue_delay.len() {
            self.queue_delay[e] =
                model.wait(self.eval.edge_latencies()[e], self.eval.edge_flows()[e]);
        }
    }
}

/// Runs an open-system simulation to the horizon.
///
/// # Errors
///
/// Returns the fault-plan validation error, if any.
pub fn run_open_system(
    instance: &Instance,
    policy: &AgentPolicy,
    f0: &FlowVec,
    config: OpenSystemConfig,
) -> Result<OpenSystemRun, NetError> {
    Ok(OpenSystem::new(instance, policy, f0, config)?.finish())
}

/// Runs one open-system simulation per seed, fanning across a
/// [`WorkerPool`] (serially when `None` or single-lane). Each run is
/// deterministic in its seed and runs are independent, so the ensemble
/// is **identical for every lane count** — runs land in seed order
/// regardless of which lane executed them.
///
/// # Errors
///
/// Returns the fault-plan validation error, if any.
pub fn run_open_ensemble(
    instance: &Instance,
    policy: &AgentPolicy,
    f0: &FlowVec,
    config: &OpenSystemConfig,
    seeds: &[u64],
    pool: Option<&WorkerPool>,
) -> Result<Vec<OpenSystemRun>, NetError> {
    if let Some(plan) = &config.faults {
        plan.validate()?;
    }
    let one = |seed: u64| {
        let mut c = config.clone();
        c.seed = seed;
        OpenSystem::new(instance, policy, f0, c)
            .expect("fault plan pre-validated")
            .finish()
    };
    let runs = match pool {
        Some(pool) if pool.lanes() > 1 && seeds.len() > 1 => {
            pool.map_collect(seeds.len(), || (), |(), i| one(seeds[i]))
        }
        _ => seeds.iter().map(|&s| one(s)).collect(),
    };
    Ok(runs)
}

// --- Fenwick trees (flat, per-commodity, local 1-based) ---

/// O(n) in-place Fenwick build from raw counts.
fn fen_build(tree: &mut [u64], counts: &[u64]) {
    tree.copy_from_slice(counts);
    for i in 1..=tree.len() {
        let j = i + (i & i.wrapping_neg());
        if j <= tree.len() {
            tree[j - 1] += tree[i - 1];
        }
    }
}

/// Adds `amount` at 1-based position `i`.
fn fen_add(tree: &mut [u64], mut i: usize, amount: u64) {
    while i <= tree.len() {
        tree[i - 1] += amount;
        i += i & i.wrapping_neg();
    }
}

/// Subtracts `amount` at 1-based position `i`.
fn fen_sub(tree: &mut [u64], mut i: usize, amount: u64) {
    while i <= tree.len() {
        tree[i - 1] -= amount;
        i += i & i.wrapping_neg();
    }
}

/// Returns the 0-based index of the element whose cumulative range
/// contains `target` (`target < total`), by binary lifting — the
/// O(log n) count-proportional pick.
fn fen_sample(tree: &[u64], mut target: u64) -> usize {
    let n = tree.len();
    let mut pos = 0usize;
    let mut step = n.next_power_of_two();
    while step > 0 {
        let next = pos + step;
        if next <= n && tree[next - 1] <= target {
            target -= tree[next - 1];
            pos = next;
        }
        step >>= 1;
    }
    pos
}

// --- binomial sampling ---

/// Draws `Binomial(n, p)` without external dependencies: a Bernoulli
/// loop for tiny `n`, CDF inversion while the mean is small, and the
/// continuity-corrected normal approximation in the bulk regime (both
/// tails ≥ 30 there, where the approximation error is far below the
/// τ-leap's own O((mδ)²) bias).
fn binomial(rng: &mut StdRng, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - binomial_small_p(rng, n, 1.0 - p);
    }
    binomial_small_p(rng, n, p)
}

/// The `0 < p ≤ 0.5` regimes of [`binomial`].
fn binomial_small_p(rng: &mut StdRng, n: u64, p: f64) -> u64 {
    let nf = n as f64;
    let mean = nf * p;
    if n <= 64 {
        let mut k = 0;
        for _ in 0..n {
            if rng.random_range(0.0..1.0) < p {
                k += 1;
            }
        }
        return k;
    }
    if mean <= 30.0 {
        // CDF inversion via the pmf recurrence. The iteration cap
        // truncates at mean + 12σ (mass < 1e-20) so a rounding underrun
        // can never walk the whole support.
        let q = 1.0 - p;
        let s = p / q;
        let mut f = (nf * q.ln()).exp();
        let mut acc = f;
        let u = rng.random_range(0.0..1.0);
        let mut k = 0u64;
        let limit = n.min((mean + 12.0 * mean.sqrt() + 64.0) as u64);
        while u >= acc && k < limit {
            k += 1;
            f *= s * (nf - k as f64 + 1.0) / k as f64;
            acc += f;
        }
        return k;
    }
    let sd = (mean * (1.0 - p)).sqrt();
    let u1 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mean + sd * z + 0.5).floor().clamp(0.0, nf) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_agents, AgentSimConfig};
    use wardrop_net::builders;

    fn total_counts(run: &OpenSystemRun) -> u64 {
        run.stats.final_population
    }

    #[test]
    fn closed_system_conserves_population() {
        let inst = builders::braess();
        let f0 = FlowVec::uniform(&inst);
        let policy = AgentPolicy::uniform_linear(&inst);
        let config = OpenSystemConfig::new(5_000, 0.5, 20, 3);
        let run = run_open_system(&inst, &policy, &f0, config).unwrap();
        assert_eq!(total_counts(&run), 5_000);
        assert_eq!(run.stats.arrivals, 0);
        assert_eq!(run.stats.departures, 0);
        assert_eq!(run.trajectory.len(), 20);
        assert!(run.trajectory.final_flow.is_feasible(&inst, 1e-9));
        assert!(run.stats.migrations > 0);
    }

    #[test]
    fn deterministic_per_seed_and_seeds_differ() {
        let inst = builders::grid_network(3, 3, 5);
        let f0 = FlowVec::uniform(&inst);
        let policy = AgentPolicy::replicator(&inst);
        let config = OpenSystemConfig::new(2_000, 0.4, 15, 42).with_churn(40.0, 0.02);
        let a = run_open_system(&inst, &policy, &f0, config.clone()).unwrap();
        let b = run_open_system(&inst, &policy, &f0, config.clone()).unwrap();
        assert_eq!(a.trajectory.final_flow, b.trajectory.final_flow);
        assert_eq!(a.stats, b.stats);
        let mut other = config;
        other.seed = 43;
        let c = run_open_system(&inst, &policy, &f0, other).unwrap();
        assert_ne!(a.trajectory.final_flow, c.trajectory.final_flow);
    }

    #[test]
    fn churn_moves_population_and_balances_books() {
        let inst = builders::braess();
        let f0 = FlowVec::uniform(&inst);
        let policy = AgentPolicy::uniform_linear(&inst);
        let config = OpenSystemConfig::new(1_000, 0.5, 30, 9).with_churn(100.0, 0.1);
        let run = run_open_system(&inst, &policy, &f0, config).unwrap();
        assert!(run.stats.arrivals > 0, "{:?}", run.stats);
        assert!(run.stats.departures > 0, "{:?}", run.stats);
        assert_eq!(
            run.stats.final_population,
            1_000 + run.stats.arrivals - run.stats.departures
        );
    }

    #[test]
    fn state_bytes_independent_of_population() {
        let inst = builders::grid_network(4, 4, 7);
        let f0 = FlowVec::uniform(&inst);
        let policy = AgentPolicy::replicator(&inst);
        let small =
            OpenSystem::new(&inst, &policy, &f0, OpenSystemConfig::new(1_000, 0.5, 4, 1)).unwrap();
        let large = OpenSystem::new(
            &inst,
            &policy,
            &f0,
            OpenSystemConfig::new(100_000_000, 0.5, 4, 1),
        )
        .unwrap();
        assert_eq!(small.state_bytes(), large.state_bytes());
        // O(paths): the marginal cost per extra path stays under the
        // 64 B/path budget (the calendar's bucket ring is a constant).
        let bigger_inst = builders::grid_network(6, 6, 7);
        let bigger_policy = AgentPolicy::replicator(&bigger_inst);
        let bigger_f0 = FlowVec::uniform(&bigger_inst);
        let bigger = OpenSystem::new(
            &bigger_inst,
            &bigger_policy,
            &bigger_f0,
            OpenSystemConfig::new(1_000, 0.5, 4, 1),
        )
        .unwrap();
        let extra_paths = bigger_inst.num_paths() - inst.num_paths();
        let extra_bytes = bigger.state_bytes() - small.state_bytes();
        assert!(
            extra_bytes <= 64 * extra_paths,
            "{extra_bytes} bytes for {extra_paths} extra paths"
        );
    }

    #[test]
    fn open_agents_drift_toward_equilibrium_on_pigou() {
        let inst = builders::pigou();
        let f0 = FlowVec::uniform(&inst);
        let policy = AgentPolicy::uniform_linear(&inst);
        let config = OpenSystemConfig::new(20_000, 0.5, 200, 3);
        let run = run_open_system(&inst, &policy, &f0, config).unwrap();
        assert!(
            run.trajectory.final_flow.values()[0] > 0.9,
            "final flow {:?}",
            run.trajectory.final_flow.values()
        );
        // Potential decreases overall.
        let phi = run.trajectory.potential_series();
        assert!(phi[phi.len() - 1] < phi[0]);
    }

    #[test]
    fn closed_run_tracks_per_activation_simulator() {
        // The τ-leaped DES and the per-activation reference follow the
        // same fluid path; at N = 40 000 the binomial noise per phase
        // is ~1/√N ≈ 0.005, so the final flows agree loosely. The
        // systematic equivalence sweep lives in tests/equivalence.rs.
        let inst = builders::pigou();
        let f0 = FlowVec::uniform(&inst);
        let policy = AgentPolicy::uniform_linear(&inst);
        let n = 40_000;
        let open = run_open_system(
            &inst,
            &policy,
            &f0,
            OpenSystemConfig::new(n, 0.5, 40, 7).with_max_leap(0.05),
        )
        .unwrap();
        let sync = run_agents(&inst, &policy, &f0, &AgentSimConfig::new(n, 0.5, 40, 7));
        let dist = open.trajectory.final_flow.linf_distance(&sync.final_flow);
        assert!(dist < 0.05, "final flows diverged by {dist}");
    }

    #[test]
    fn best_response_open_agents_oscillate() {
        let inst = builders::two_link_oscillator(4.0);
        let t = 0.5_f64;
        let f1 = wardrop_core::theory::oscillation::initial_flow(t);
        let f0 = FlowVec::from_values(&inst, vec![f1, 1.0 - f1]).unwrap();
        let config = OpenSystemConfig::new(10_000, t, 60, 11).with_flows();
        let run = run_open_system(&inst, &AgentPolicy::BestResponse, &f0, config).unwrap();
        let f_even = run.trajectory.flows[40].values()[0];
        let f_odd = run.trajectory.flows[41].values()[0];
        assert!(
            (f_even - 0.5) * (f_odd - 0.5) < 0.0,
            "phases 40/41: {f_even} vs {f_odd}"
        );
    }

    #[test]
    fn staleness_grows_with_update_period() {
        let inst = builders::pigou();
        let f0 = FlowVec::uniform(&inst);
        let policy = AgentPolicy::uniform_linear(&inst);
        let slow = run_open_system(
            &inst,
            &policy,
            &f0,
            OpenSystemConfig::new(50_000, 2.0, 20, 5),
        )
        .unwrap();
        let fast = run_open_system(
            &inst,
            &policy,
            &f0,
            OpenSystemConfig::new(50_000, 0.05, 20, 5),
        )
        .unwrap();
        assert!(slow.stats.staleness_mean > 0.0);
        assert!(
            slow.stats.staleness_mean > fast.stats.staleness_mean,
            "stale board should lag more at T = 2.0: {} vs {}",
            slow.stats.staleness_mean,
            fast.stats.staleness_mean
        );
    }

    #[test]
    fn queueing_inflates_posted_latencies_and_changes_dynamics() {
        let inst = builders::braess();
        let f0 = FlowVec::uniform(&inst);
        let policy = AgentPolicy::uniform_linear(&inst);
        let base = OpenSystemConfig::new(5_000, 0.5, 30, 13);
        let plain = run_open_system(&inst, &policy, &f0, base.clone()).unwrap();
        let queued = run_open_system(
            &inst,
            &policy,
            &f0,
            base.with_queueing(QueueingModel::new(4, 1.2)),
        )
        .unwrap();
        // Congestion-dependent waits steer the agents differently.
        assert_ne!(plain.trajectory.final_flow, queued.trajectory.final_flow);
        // And the experienced-vs-posted gap is still well defined.
        assert!(queued.stats.staleness_mean >= 0.0);
    }

    #[test]
    fn erlang_c_wait_is_monotone_in_load() {
        let model = QueueingModel::new(4, 1.0);
        assert_eq!(model.wait(1.0, 0.0), 0.0);
        let mut last = 0.0;
        for load in [0.2, 0.5, 0.8, 0.95, 2.0] {
            let w = model.wait(1.0, load);
            assert!(w >= last, "wait must grow with load: {w} < {last}");
            last = w;
        }
        assert!(last.is_finite(), "clamped utilisation keeps waits finite");
        // More servers at equal utilisation ⇒ less waiting.
        assert!(
            QueueingModel::new(8, 1.0).wait(1.0, 0.8) < QueueingModel::new(2, 1.0).wait(1.0, 0.8)
        );
    }

    #[test]
    fn fault_plans_apply_on_open_posts() {
        let inst = builders::braess();
        let f0 = FlowVec::uniform(&inst);
        let policy = AgentPolicy::uniform_linear(&inst);
        let base = OpenSystemConfig::new(4_000, 0.5, 30, 17);
        let plain = run_open_system(&inst, &policy, &f0, base.clone()).unwrap();
        // A zero-fault plan takes the clean post path every phase.
        let trivial = base.clone().with_faults(FaultPlan::new(5));
        let same = run_open_system(&inst, &policy, &f0, trivial).unwrap();
        assert_eq!(plain.trajectory.final_flow, same.trajectory.final_flow);
        // An outage starves the agents of fresh information.
        let faulted = base.with_faults(FaultPlan::new(5).with_outage(2, 20).unwrap());
        let diff = run_open_system(&inst, &policy, &f0, faulted).unwrap();
        assert_ne!(plain.trajectory.final_flow, diff.trajectory.final_flow);
    }

    #[test]
    fn ensemble_is_lane_count_transparent() {
        let inst = builders::grid_network(3, 3, 2);
        let f0 = FlowVec::uniform(&inst);
        let policy = AgentPolicy::replicator(&inst);
        let config = OpenSystemConfig::new(2_000, 0.4, 10, 0).with_churn(30.0, 0.03);
        let seeds = [9u64, 8, 7, 6, 5];
        let serial = run_open_ensemble(&inst, &policy, &f0, &config, &seeds, None).unwrap();
        for lanes in [2usize, 4] {
            let pool = WorkerPool::new(lanes);
            let pooled =
                run_open_ensemble(&inst, &policy, &f0, &config, &seeds, Some(&pool)).unwrap();
            assert_eq!(pooled.len(), serial.len());
            for (a, b) in pooled.iter().zip(&serial) {
                assert_eq!(a.trajectory.phases, b.trajectory.phases, "lanes = {lanes}");
                assert_eq!(
                    a.trajectory.final_flow, b.trajectory.final_flow,
                    "lanes = {lanes}"
                );
                assert_eq!(a.stats, b.stats, "lanes = {lanes}");
            }
        }
    }

    #[test]
    fn multi_commodity_open_system_stays_consistent() {
        let inst = builders::multi_commodity_grid(3, 3, 5);
        let f0 = FlowVec::uniform(&inst);
        let policy = AgentPolicy::uniform_linear(&inst);
        let config = OpenSystemConfig::new(3_000, 0.4, 20, 7).with_churn(60.0, 0.05);
        let mut sys = OpenSystem::new(&inst, &policy, &f0, config).unwrap();
        while sys.step().is_some() {
            // Invariant: per-commodity Fenwick totals equal the raw
            // counts at all times.
            for i in 0..inst.num_commodities() {
                let range = inst.commodity_paths(i);
                let raw: u64 = sys.counts[range.clone()].iter().sum();
                assert_eq!(raw, sys.commodity_totals[i]);
            }
            let total: u64 = sys.commodity_totals.iter().sum();
            assert_eq!(total, sys.population);
        }
        assert!(sys.is_done());
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn zero_agents_rejected() {
        let inst = builders::pigou();
        let f0 = FlowVec::uniform(&inst);
        let policy = AgentPolicy::uniform_linear(&inst);
        let _ = OpenSystem::new(&inst, &policy, &f0, OpenSystemConfig::new(0, 0.5, 10, 1));
    }

    // --- Fenwick unit tests ---

    #[test]
    fn fenwick_sample_matches_count_distribution() {
        let counts = [5u64, 0, 3, 12, 0, 1, 7];
        let total: u64 = counts.iter().sum();
        let mut tree = vec![0u64; counts.len()];
        fen_build(&mut tree, &counts);
        // Exhaustive: every target lands on the path owning its slot.
        let mut expected = Vec::new();
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                expected.push(i);
            }
        }
        for target in 0..total {
            assert_eq!(fen_sample(&tree, target), expected[target as usize]);
        }
    }

    #[test]
    fn fenwick_add_sub_roundtrip() {
        let mut counts = [2u64, 4, 0, 9, 1];
        let mut tree = vec![0u64; counts.len()];
        fen_build(&mut tree, &counts);
        fen_add(&mut tree, 3, 5);
        counts[2] += 5;
        fen_sub(&mut tree, 4, 9);
        counts[3] -= 9;
        fen_add(&mut tree, 1, 1);
        counts[0] += 1;
        let total: u64 = counts.iter().sum();
        let mut seen = vec![0u64; counts.len()];
        for target in 0..total {
            seen[fen_sample(&tree, target)] += 1;
        }
        assert_eq!(seen, counts);
    }

    // --- binomial sampler unit tests ---

    fn check_moments(n: u64, p: f64, draws: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mean_want = n as f64 * p;
        let var_want = n as f64 * p * (1.0 - p);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..draws {
            let k = binomial(&mut rng, n, p) as f64;
            assert!(k <= n as f64);
            sum += k;
            sumsq += k * k;
        }
        let mean = sum / draws as f64;
        let var = sumsq / draws as f64 - mean * mean;
        let mean_tol = 6.0 * (var_want / draws as f64).sqrt().max(1e-3);
        assert!(
            (mean - mean_want).abs() < mean_tol,
            "n={n} p={p}: mean {mean} vs {mean_want}"
        );
        assert!(
            (var - var_want).abs() < 0.2 * var_want + 0.05,
            "n={n} p={p}: var {var} vs {var_want}"
        );
    }

    #[test]
    fn binomial_moments_across_regimes() {
        check_moments(40, 0.3, 20_000, 1); // Bernoulli loop
        check_moments(10_000, 0.001, 20_000, 2); // CDF inversion
        check_moments(100_000, 0.3, 5_000, 3); // normal approximation
        check_moments(500, 0.97, 20_000, 4); // flipped tail
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
        for _ in 0..100 {
            let k = binomial(&mut rng, 5, 0.5);
            assert!(k <= 5);
        }
    }
}
