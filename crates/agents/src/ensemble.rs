//! Ensembles of finite-population runs across seeds.
//!
//! Single stochastic runs are noisy; the experiments and tests that
//! compare finite populations against the fluid limit average over
//! seeds. This module packages that pattern with summary statistics.

use serde::{Deserialize, Serialize};
use wardrop_core::trajectory::Trajectory;
use wardrop_core::WorkerPool;
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;

use crate::sim::{AgentPolicy, AgentSimConfig};

/// Mean/std/min/max of a per-run scalar across an ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Ensemble mean.
    pub mean: f64,
    /// Ensemble standard deviation (population).
    pub std_dev: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Summary {
    /// Summarises a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics on empty input.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary of empty ensemble");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Summary {
            mean,
            std_dev: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// The trajectories of an ensemble, one per seed.
#[derive(Debug, Clone)]
pub struct Ensemble {
    /// The seeds used, in run order.
    pub seeds: Vec<u64>,
    /// One trajectory per seed.
    pub runs: Vec<Trajectory>,
}

impl Ensemble {
    /// Runs `policy` for every seed with otherwise identical
    /// configuration.
    ///
    /// The `seed` field of `config` is overridden per run.
    pub fn run(
        instance: &Instance,
        policy: &AgentPolicy,
        f0: &FlowVec,
        config: &AgentSimConfig,
        seeds: &[u64],
    ) -> Self {
        Self::run_with(instance, policy, f0, config, seeds, None)
    }

    /// As [`Ensemble::run`], fanning the per-seed runs across a
    /// [`WorkerPool`] (serially when `None` or single-lane).
    ///
    /// Each run is deterministic in its seed and runs are independent,
    /// so the ensemble is **identical for every lane count** — the
    /// runs land in seed order regardless of which lane executed them.
    /// Inner runs are forced serial so lane counts never multiply.
    pub fn run_with(
        instance: &Instance,
        policy: &AgentPolicy,
        f0: &FlowVec,
        config: &AgentSimConfig,
        seeds: &[u64],
        pool: Option<&WorkerPool>,
    ) -> Self {
        let one = |seed: u64| {
            let mut c = config.clone();
            c.seed = seed;
            // Inner runs are forced serial via the explicit-pool entry
            // point (a plain `Serial` config could still be overridden
            // by `WARDROP_THREADS`, multiplying lane counts).
            crate::sim::run_agents_scenario_pooled(
                instance,
                policy,
                f0,
                &c,
                &wardrop_net::scenario::Scenario::default(),
                None,
            )
            .expect("static agent runs cannot fail event application")
        };
        let runs = match pool {
            Some(pool) if pool.lanes() > 1 && seeds.len() > 1 => {
                pool.map_collect(seeds.len(), || (), |(), i| one(seeds[i]))
            }
            _ => seeds.iter().map(|&s| one(s)).collect(),
        };
        Ensemble {
            seeds: seeds.to_vec(),
            runs,
        }
    }

    /// Summary of a scalar extracted from each run.
    ///
    /// # Panics
    ///
    /// Panics if the ensemble is empty.
    pub fn summarise<F: Fn(&Trajectory) -> f64>(&self, f: F) -> Summary {
        let values: Vec<f64> = self.runs.iter().map(f).collect();
        Summary::of(&values)
    }

    /// Summary of the final potential across runs.
    pub fn final_potential(&self, instance: &Instance) -> Summary {
        self.summarise(|t| wardrop_net::potential::potential(instance, &t.final_flow))
    }

    /// Summary of the bad-phase count (`(δ,ε)`, Definition 3) across
    /// runs, for the `delta_idx`-th configured δ.
    pub fn bad_phase_counts(&self, delta_idx: usize, eps: f64) -> Summary {
        self.summarise(|t| t.bad_phase_count(delta_idx, eps) as f64)
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if the ensemble has no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wardrop_net::builders;

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - 1.25_f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    #[should_panic(expected = "empty ensemble")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn ensemble_runs_one_trajectory_per_seed() {
        let inst = builders::pigou();
        let f0 = FlowVec::uniform(&inst);
        let config = AgentSimConfig::new(200, 0.5, 20, 0);
        let policy = AgentPolicy::uniform_linear(&inst);
        let ens = Ensemble::run(&inst, &policy, &f0, &config, &[1, 2, 3]);
        assert_eq!(ens.len(), 3);
        assert!(!ens.is_empty());
        // Different seeds give different final flows (generically).
        assert_ne!(ens.runs[0].final_flow, ens.runs[1].final_flow);
    }

    #[test]
    fn pooled_ensemble_matches_serial_run_for_run() {
        let inst = builders::braess();
        let f0 = FlowVec::uniform(&inst);
        let config = AgentSimConfig::new(300, 0.4, 30, 0).with_flows();
        let policy = AgentPolicy::uniform_linear(&inst);
        let seeds = [9u64, 8, 7, 6, 5];
        let serial = Ensemble::run(&inst, &policy, &f0, &config, &seeds);
        for lanes in [2usize, 4] {
            let pool = WorkerPool::new(lanes);
            let pooled = Ensemble::run_with(&inst, &policy, &f0, &config, &seeds, Some(&pool));
            assert_eq!(pooled.seeds, serial.seeds);
            for (a, b) in pooled.runs.iter().zip(&serial.runs) {
                assert_eq!(a.phases, b.phases, "lanes = {lanes}");
                assert_eq!(a.final_flow, b.final_flow, "lanes = {lanes}");
            }
        }
    }

    #[test]
    fn ensemble_summaries_are_consistent() {
        let inst = builders::pigou();
        let f0 = FlowVec::uniform(&inst);
        let config = AgentSimConfig::new(500, 0.5, 100, 0).with_deltas(vec![0.1]);
        let policy = AgentPolicy::uniform_linear(&inst);
        let ens = Ensemble::run(&inst, &policy, &f0, &config, &[4, 5, 6, 7]);
        let phi = ens.final_potential(&inst);
        assert!(phi.min <= phi.mean && phi.mean <= phi.max);
        let bad = ens.bad_phase_counts(0, 0.1);
        assert!(bad.mean >= 0.0);
        assert!(bad.max <= 100.0);
    }
}
