//! Closed-population equivalence: the event-calendar open-system
//! simulator with churn disabled must reproduce the per-activation
//! reference simulator's flow trajectories within binomial noise.
//!
//! Both simulators realise the same stochastic process — `N` agents
//! with rate-1 revision clocks against a board posted every `T` — so
//! for a shared instance, policy and phase schedule their recorded
//! flows are two independent samples around the same fluid path. Each
//! coordinate carries sampling noise of order `√(x(1−x)/N)` plus the
//! τ-leap's `O((mδ)²)` discretisation bias, so the per-phase L∞ gap
//! between the runs must stay within a small multiple of `1/√N`.
//!
//! Property-tested over the full 12-policy smooth zoo (3 sampling ×
//! 4 migration rules, mirroring `stock_policy_zoo`) on grid and
//! funnel instances with a shared seed schedule.

use proptest::prelude::*;
use wardrop_agents::open_system::{run_open_system, OpenSystemConfig};
use wardrop_agents::sim::{run_agents, AgentPolicy, AgentSimConfig};
use wardrop_core::migration::{BetterResponse, Linear, MigrationRule, RelativeSlack, ScaledLinear};
use wardrop_core::sampling::{Logit, Proportional, SamplingRule, Uniform};
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;

const NUM_AGENTS: u64 = 20_000;
const PHASES: usize = 10;
const PERIOD: f64 = 0.25;

/// The agent-policy mirror of `stock_policy_zoo`: index / 4 picks the
/// sampling rule, index % 4 the migration rule.
fn zoo_policy(index: usize, lmax: f64) -> AgentPolicy {
    let alpha = 4.0 / lmax;
    let sampling: Box<dyn SamplingRule> = match index / 4 {
        0 => Box::new(Uniform),
        1 => Box::new(Proportional),
        _ => Box::new(Logit::new(2.0)),
    };
    let migration: Box<dyn MigrationRule> = match index % 4 {
        0 => Box::new(Linear::new(lmax)),
        1 => Box::new(ScaledLinear::new(alpha)),
        2 => Box::new(BetterResponse),
        _ => Box::new(RelativeSlack),
    };
    AgentPolicy::Smooth {
        sampling,
        migration,
    }
}

fn pick_instance(index: usize) -> Instance {
    match index % 2 {
        0 => builders::grid_network(3, 3, 7),
        _ => builders::funnel_links(6, 0.25),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite: closed-population DES matches `run_agents` flow
    /// trajectories within binomial-noise bounds across the policy
    /// zoo × grid/funnel with a shared seed schedule.
    #[test]
    fn closed_des_matches_reference_within_binomial_noise(
        (policy_index, instance_index) in (0usize..12, 0usize..2),
        seed in 1u64..10_000,
    ) {
        let instance = pick_instance(instance_index);
        let lmax = instance.latency_upper_bound();
        let policy = zoo_policy(policy_index, lmax);
        let f0 = FlowVec::uniform(&instance);

        let reference = run_agents(
            &instance,
            &policy,
            &f0,
            &AgentSimConfig::new(NUM_AGENTS, PERIOD, PHASES, seed).with_flows(),
        );
        let open_config = OpenSystemConfig::new(NUM_AGENTS, PERIOD, PHASES, seed)
            .with_max_leap(PERIOD / 8.0)
            .with_flows();
        let open = run_open_system(&instance, &policy, &f0, open_config)
            .expect("closed open-system run");

        prop_assert_eq!(reference.len(), PHASES);
        prop_assert_eq!(open.trajectory.len(), PHASES);
        prop_assert_eq!(open.stats.arrivals, 0);
        prop_assert_eq!(open.stats.departures, 0);
        prop_assert_eq!(open.stats.final_population, NUM_AGENTS);
        prop_assert_eq!(reference.flows.len(), open.trajectory.flows.len());

        // Two independent N-agent samples of the same fluid path:
        // allow a generous multiple of 1/√N for accumulated drift.
        let tol = 12.0 / (NUM_AGENTS as f64).sqrt();
        for (phase, (a, b)) in reference
            .flows
            .iter()
            .zip(&open.trajectory.flows)
            .enumerate()
        {
            let gap = a.linf_distance(b);
            prop_assert!(
                gap <= tol,
                "policy {} instance {} seed {}: phase {} L∞ gap {:.4} > tol {:.4}",
                policy_index,
                instance_index,
                seed,
                phase,
                gap,
                tol,
            );
        }
        prop_assert!(open.trajectory.final_flow.is_feasible(&instance, 1e-6));
    }
}
