//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON against the compat [`serde::Value`] model.
//! Divergence from the real crate: non-finite floats are written as the
//! bare tokens `NaN` / `Infinity` / `-Infinity` (and accepted back by
//! [`from_str`]) so that artefact round-trips are lossless.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{de::DeserializeOwned, Serialize, Value};

pub use serde::Error;

/// Serialise `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise `value` to a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialise a value of type `T` from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// --------------------------------------------------------------------
// Writer
// --------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, depth),
        Value::Map(entries) => write_map(out, entries, indent, depth),
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("NaN");
    } else if x == f64::INFINITY {
        out.push_str("Infinity");
    } else if x == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // Rust's shortest representation round-trips exactly.
        let s = x.to_string();
        out.push_str(&s);
        // Keep a float marker so readers can tell 1.0 from 1 (the
        // parser treats them interchangeably either way).
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<usize>, depth: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_value(out, item, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Value)], indent: Option<usize>, depth: usize) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_string(out, k);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, v, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push('}');
}

// --------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::F64(f64::NAN)),
            Some(b'I') if self.eat_keyword("Infinity") => Ok(Value::F64(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Value::F64(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input at byte {}: {:?}",
                self.pos,
                other.map(|b| b as char)
            ))),
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::custom(format!("invalid number: {e}")))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}")))
        }
    }
}
