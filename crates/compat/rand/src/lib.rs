//! Offline stand-in for [`rand`](https://crates.io/crates/rand) 0.9.
//!
//! Provides [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! this workspace uses: [`Rng::random_range`] over half-open and
//! inclusive integer/float ranges and [`Rng::random_bool`]. Same seed
//! always produces the same stream, as the builders' determinism tests
//! require — but the stream differs from the real crate's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The SplitMix64 step: advances `state` by the golden-gamma increment
/// and returns the next output.
///
/// This is the workspace's single canonical implementation of
/// SplitMix64 — the seed expander of [`rngs::StdRng`] and (re-exported
/// through `wardrop_net::rng`) the deterministic generator behind
/// phase-length jitter. If this crate is ever replaced by the real
/// `rand`, move this function into `wardrop_net::rng`.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically build an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random number generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: xoshiro256**, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut state = seed;
            let mut next = || crate::splitmix64(&mut state);
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range from which [`Rng::random_range`] can sample.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 uniform bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the spans used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods on random sources, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference outputs of Vigna's splitmix64.c for seed 0:
        // successive calls advance the state by the golden gamma.
        let mut state = 0u64;
        assert_eq!(splitmix64(&mut state), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut state), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut state), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn splitmix64_is_deterministic_per_seed() {
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..16 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
        let mut c = 43u64;
        assert_ne!(splitmix64(&mut a), splitmix64(&mut c));
    }

    #[test]
    fn seed_expansion_uses_splitmix() {
        use rngs::StdRng;
        // The xoshiro state must be the first four SplitMix64 outputs
        // of the seed. The first xoshiro256** output is a pure function
        // of that state: rotl(s[1] · 5, 7) · 9 — recompute it from the
        // expanded seed and demand an exact match.
        let mut state = 7u64;
        let expanded = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        let first_expected = expanded[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(rng.next_u64(), first_expected);
    }
}
