//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! Implements the subset of the serde API this workspace uses on top of
//! a self-describing [`Value`] model: the [`Serialize`] and
//! [`Deserialize`] traits, the derive macros (re-exported from
//! `serde_derive`), and the [`de::DeserializeOwned`] marker bound.
//! See `crates/compat/README.md` for the full list of divergences from
//! the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value, or `None`.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of a sequence value, or `None`.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be serialised into a [`Value`].
pub trait Serialize {
    /// Convert `self` into the value model.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from the value model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialisation marker bounds, mirroring `serde::de`.
pub mod de {
    /// Owned deserialisation: blanket-implemented for every
    /// [`Deserialize`](crate::Deserialize) type.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Look up a field in a serialised map (used by the derive expansion).
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

fn int_from_value(v: &Value) -> Result<i128, Error> {
    match v {
        Value::I64(n) => Ok(*n as i128),
        Value::U64(n) => Ok(*n as i128),
        Value::F64(x) if x.fract() == 0.0 => Ok(*x as i128),
        other => Err(Error::custom(format!("expected integer, got {other:?}"))),
    }
}

macro_rules! impl_int {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $cast)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = int_from_value(v)?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int! {
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v
                    .as_seq()
                    .ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got {} elements", expected, seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple! {
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
}
