//! Offline stand-in for `serde_derive`.
//!
//! Derives the compat `serde::Serialize` / `serde::Deserialize` traits
//! (a self-describing `Value` model) for the shapes this workspace
//! uses: named-field structs, tuple structs (newtype-transparent), and
//! enums with unit / newtype / tuple / struct variants, externally
//! tagged like real serde. `#[serde(default)]` on a named field is
//! honoured during deserialisation. Generic types are not supported.
//!
//! `syn`/`quote` are unavailable offline, so the derive input is parsed
//! directly from the token stream and the impl is emitted as a string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive the compat `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    src.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derive the compat `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    src.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// --------------------------------------------------------------------
// Parsing
// --------------------------------------------------------------------

/// Skip attributes (`#[...]`, including doc comments), reporting
/// whether any of them was `#[serde(default)]`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            let body = g.stream().to_string();
            if body.starts_with("serde") && body.contains("default") {
                has_default = true;
            }
            *i += 2;
        } else {
            break;
        }
    }
    has_default
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the compat derive");
        }
    }
    match kw.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let n =
                        split_top_level_commas(&g.stream().into_iter().collect::<Vec<_>>()).len();
                    Fields::Tuple(n)
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, got {other:?}"),
            };
            let variants = split_top_level_commas(&body.into_iter().collect::<Vec<_>>())
                .into_iter()
                .map(|chunk| parse_variant(&chunk))
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    }
}

/// Split a token slice on commas that are not nested inside `<...>`
/// (delimiter groups already hide their own commas).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    for t in tokens {
        let is_dash = matches!(t, TokenTree::Punct(p) if p.as_char() == '-');
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                cur.push(t.clone());
            }
            // `->` must not close an angle bracket.
            TokenTree::Punct(p) if p.as_char() == '>' && !prev_dash => {
                angle_depth -= 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(t.clone()),
        }
        prev_dash = is_dash;
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    split_top_level_commas(&toks)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            let default = skip_attrs(&chunk, &mut i);
            skip_vis(&chunk, &mut i);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, got {other:?}"),
            };
            match chunk.get(i + 1) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
            }
            Field { name, default }
        })
        .collect()
}

fn parse_variant(chunk: &[TokenTree]) -> Variant {
    let mut i = 0;
    skip_attrs(chunk, &mut i);
    let name = match chunk.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected variant name, got {other:?}"),
    };
    let fields = match chunk.get(i + 1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = split_top_level_commas(&g.stream().into_iter().collect::<Vec<_>>()).len();
            Fields::Tuple(n)
        }
        _ => Fields::Unit,
    };
    Variant { name, fields }
}

// --------------------------------------------------------------------
// Codegen: Serialize
// --------------------------------------------------------------------

fn named_fields_to_map(fields: &[Field], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&{1}{0}))",
                f.name, access_prefix
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(fs) => named_fields_to_map(fs, "self."),
        // Newtype structs are transparent, matching real serde.
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vname} => \
                     ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                    let payload = if *n == 1 {
                        "::serde::Serialize::to_value(x0)".to_string()
                    } else {
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                    };
                    format!(
                        "{name}::{vname}({binds}) => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), {payload})]),",
                        binds = binds.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                    let payload = named_fields_to_map(fs, "");
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), {payload})]),",
                        binds = binds.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {} }}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}

// --------------------------------------------------------------------
// Codegen: Deserialize
// --------------------------------------------------------------------

fn named_fields_from_map(fields: &[Field], entries_var: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.default {
                format!(
                    "{0}: match ::serde::field({entries_var}, \"{0}\") {{\n\
                         ::std::result::Result::Ok(v) => ::serde::Deserialize::from_value(v)?,\n\
                         ::std::result::Result::Err(_) => ::std::default::Default::default(),\n\
                     }}",
                    f.name
                )
            } else {
                format!(
                    "{0}: ::serde::Deserialize::from_value(::serde::field({entries_var}, \"{0}\")?)?",
                    f.name
                )
            }
        })
        .collect();
    inits.join(",\n")
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(fs) => format!(
            "let entries = v.as_map().ok_or_else(|| \
                 ::serde::Error::custom(\"expected map for {name}\"))?;\n\
             ::std::result::Result::Ok({name} {{ {} }})",
            named_fields_from_map(fs, "entries")
        ),
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                .collect();
            format!(
                "let seq = v.as_seq().ok_or_else(|| \
                     ::serde::Error::custom(\"expected sequence for {name}\"))?;\n\
                 if seq.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         \"wrong tuple length for {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => unreachable!(),
                Fields::Tuple(1) => format!(
                    "\"{vname}\" => ::std::result::Result::Ok(\
                     {name}::{vname}(::serde::Deserialize::from_value(payload)?)),"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                        .collect();
                    format!(
                        "\"{vname}\" => {{\n\
                             let seq = payload.as_seq().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected sequence for {name}::{vname}\"))?;\n\
                             if seq.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                     \"wrong tuple length for {name}::{vname}\"));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n\
                         }}",
                        items.join(", ")
                    )
                }
                Fields::Named(fs) => format!(
                    "\"{vname}\" => {{\n\
                         let ventries = payload.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"expected map for {name}::{vname}\"))?;\n\
                         ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                     }}",
                    named_fields_from_map(fs, "ventries")
                ),
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {units}\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {tagged}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"invalid value for {name}: {{other:?}}\"))),\n\
                 }}\n\
             }}\n\
         }}",
        units = unit_arms.join("\n"),
        tagged = tagged_arms.join("\n"),
    )
}
