//! Offline stand-in for [`proptest`](https://proptest-rs.github.io/).
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait
//! with [`Strategy::prop_map`] / [`Strategy::prop_flat_map`], range and
//! tuple strategies, [`Just`], [`collection::vec`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Divergence from the real crate: no shrinking. Each test runs a
//! fixed, deterministically seeded case sequence (seeded from the test
//! name), so a failure reports its case number and reproduces on every
//! run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The per-case random source handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// A deterministic RNG derived from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Lengths accepted by [`vec()`]: a fixed `usize` or a `Range<usize>`.
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniformly drawn from the half-open range.
        Range(std::ops::Range<usize>),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange::Range(r)
        }
    }

    /// A strategy for `Vec`s of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = match &self.size {
                SizeRange::Fixed(n) => *n,
                SizeRange::Range(r) => r.clone().generate(rng),
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed property (carried by `prop_assert!` and `?`).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Assert a boolean property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` seeded cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
}

/// One-import convenience module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, TestRng};
}
